// Package endpoint implements media endpoints: user devices presenting
// the user interface of paper Figure 5 over a slot, and the
// media-processing resources the paper's services rely on — tone
// generators, audio-signaling IVRs, conference bridges, and movie
// servers (paper Sections I, II, and IV-B).
//
// Endpoints are boxes like any other: they run the same goal
// primitives, with the one difference that users at media endpoints
// have full freedom to choose the mute flags (paper Section V).
package endpoint

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/media"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/transport"
)

// DefaultCodecs is the codec menu devices offer unless configured
// otherwise, in descending priority (paper Section VI-A).
var DefaultCodecs = []sig.Codec{sig.G711, sig.G726}

// DefaultCodecsProfile builds an endpoint profile at name:5004 with
// the default codec menus, a convenience for tests and examples that
// drive a bare box as an endpoint.
func DefaultCodecsProfile(name string) *core.EndpointProfile {
	return core.NewEndpointProfile(name, name, 5004, DefaultCodecs, DefaultCodecs)
}

// Config configures a Device.
type Config struct {
	Name string
	Net  transport.Network
	// Plane receives the device's media agent; nil disables media
	// simulation.
	Plane media.Registry
	// Addr is the signaling listen address; defaults to Name.
	Addr string
	// MediaAddr/MediaPort is the RTP receiving socket; defaults to
	// Name:5004.
	MediaAddr string
	MediaPort int
	// RecvCodecs and SendCodecs default to DefaultCodecs.
	RecvCodecs []sig.Codec
	SendCodecs []sig.Codec
	// AutoAccept makes the device accept any incoming open immediately
	// (media resources behave this way); interactive devices ring
	// instead and accept on Answer.
	AutoAccept bool
	// Unavailable makes the device decline setup meta-signals.
	Unavailable bool
	// OnRing, if set, is called when an open arrives on a channel of a
	// non-auto-accept device. Called from the box goroutine: do not
	// call device methods from it synchronously.
	OnRing func(channel string)
	// OnApp, if set, observes application meta-signals. The attrs
	// slice is only valid for the duration of the call (its backing
	// frame is recycled afterwards); the strings read from it are
	// safe to retain.
	OnApp func(channel, app string, attrs []sig.Attr)
	// MediaPace, if nonzero on a plane that supports paced streaming
	// (the UDP plane), runs a continuous transmitter for the device's
	// agent: every MediaPace it sends up to MediaPaceBatch packets
	// (default 1) while the agent is transmitting, so media flows
	// without external Tick driving.
	MediaPace      time.Duration
	MediaPaceBatch int
}

// Device is a media endpoint with the Figure 5 user interface: it can
// place calls (open), ring and answer or reject (accept/close), hang
// up (close), and modify its mute flags mid-channel.
type Device struct {
	name  string
	r     *box.Runner
	prof  *core.EndpointProfile
	agent *media.Agent
	cfg   Config

	mu      sync.Mutex
	ringing map[string]bool
	pacer   *media.Pacer // continuous media transmitter (UDP plane only)
}

// NewDevice creates, registers, and starts a device.
func NewDevice(cfg Config) (*Device, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("endpoint: device needs a name")
	}
	if cfg.Addr == "" {
		cfg.Addr = cfg.Name
	}
	if cfg.MediaAddr == "" {
		cfg.MediaAddr = cfg.Name
	}
	if cfg.MediaPort == 0 {
		cfg.MediaPort = 5004
	}
	if cfg.RecvCodecs == nil {
		cfg.RecvCodecs = DefaultCodecs
	}
	if cfg.SendCodecs == nil {
		cfg.SendCodecs = DefaultCodecs
	}
	prof := core.NewEndpointProfile(cfg.Name, cfg.MediaAddr, cfg.MediaPort, cfg.RecvCodecs, cfg.SendCodecs)
	b := box.New(cfg.Name, prof)
	d := &Device{name: cfg.Name, prof: prof, cfg: cfg, ringing: map[string]bool{}}
	if cfg.Plane != nil {
		d.agent = cfg.Plane.Agent(cfg.Name, media.AddrPort{Addr: cfg.MediaAddr, Port: cfg.MediaPort})
		d.startPacer(d.agent)
	}
	if cfg.AutoAccept {
		b.DefaultGoal = func(slotName string) core.Goal { return core.NewHoldSlot(slotName, prof) }
	} else {
		b.DefaultGoal = func(slotName string) core.Goal { return &ringGoal{name: slotName} }
	}
	b.Hook = d.hook
	d.r = box.NewRunner(b, cfg.Net)
	if err := d.r.Listen(cfg.Addr, nil); err != nil {
		d.r.Stop()
		return nil, err
	}
	return d, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Runner exposes the underlying box runner, mainly for tests.
func (d *Device) Runner() *box.Runner { return d.r }

// Agent returns the device's media agent (nil without a plane).
func (d *Device) Agent() *media.Agent {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.agent
}

// startPacer attaches a continuous media transmitter to agent when the
// device is configured for paced streaming and the plane supports it.
// The pacer self-gates on the agent's transmission state, so it simply
// runs for the device's lifetime.
func (d *Device) startPacer(agent *media.Agent) {
	if d.cfg.MediaPace <= 0 {
		return
	}
	paced, ok := d.cfg.Plane.(media.PacedPlane)
	if !ok {
		return
	}
	d.mu.Lock()
	old := d.pacer
	d.pacer = paced.StartPacer(agent, d.cfg.MediaPace, d.cfg.MediaPaceBatch)
	d.mu.Unlock()
	if old != nil {
		old.Stop()
	}
}

// Stop shuts the device down.
func (d *Device) Stop() {
	d.mu.Lock()
	pc := d.pacer
	d.pacer = nil
	d.mu.Unlock()
	if pc != nil {
		pc.Stop()
	}
	d.r.Stop()
}

// hook runs inside the box goroutine after every event: autonomous
// device behavior plus media-agent refresh.
func (d *Device) hook(ctx *box.Ctx, ev *box.Event) {
	if ev.Kind == box.EvEnvelope && ev.Env.IsMeta() {
		m := ev.Env.Meta
		switch m.Kind {
		case sig.MetaSetup:
			// Announce availability: the meta-signals that "indicate
			// that the intended far endpoint is currently available or
			// unavailable" (paper Section III-A).
			kind := sig.MetaAvailable
			if d.cfg.Unavailable {
				kind = sig.MetaUnavailable
			}
			ctx.SendMeta(ev.Channel, sig.Meta{Kind: kind})
		case sig.MetaApp:
			if d.cfg.OnApp != nil {
				d.cfg.OnApp(ev.Channel, m.App, m.Attrs)
			}
		}
	}
	if ev.Kind == box.EvEnvelope && !ev.Env.IsMeta() && ev.Env.Sig.Kind == sig.KindOpen && !d.cfg.AutoAccept {
		d.mu.Lock()
		d.ringing[ev.Channel] = true
		d.mu.Unlock()
		if d.cfg.OnRing != nil {
			d.cfg.OnRing(ev.Channel)
		}
	}
	// The caller withdrew (close) or the channel is gone: stop ringing.
	if ev.Kind == box.EvEnvelope &&
		((ev.Env.IsMeta() && ev.Env.Meta.Kind == sig.MetaTeardown) ||
			(!ev.Env.IsMeta() && ev.Env.Sig.Kind == sig.KindClose)) {
		d.clearRing(ev.Channel)
	}
	d.refreshAgent(ctx.Box())
}

// refreshAgent recomputes the media agent's sending/expecting state
// from the device's slots. A device has one media socket; if several
// slots are flowing (a transient during switches), the first in slot
// order wins.
func (d *Device) refreshAgent(b *box.Box) {
	agent := d.Agent()
	if agent == nil {
		return
	}
	var sendTo media.AddrPort
	var sendCodec sig.Codec
	var expFrom media.AddrPort
	var expCodec sig.Codec
	listening := false
	for _, name := range b.SlotNames() {
		s := b.Slot(name)
		if s == nil || s.State() != slot.Flowing {
			continue
		}
		h := s.Hist()
		if h.HasDescSent && !h.DescSent.NoMedia() {
			listening = true
		}
		if sendTo.IsZero() && s.Enabled() {
			if dsc, ok := s.Desc(); ok && !dsc.NoMedia() {
				sendTo = media.AddrPort{Addr: dsc.Addr, Port: dsc.Port}
				sendCodec = h.SelSent.Codec
			}
		}
		// A selector always responds to a descriptor (paper Section
		// VI-B): honor it only if it answers our current descriptor.
		if expFrom.IsZero() && h.HasSelRcvd && !h.SelRcvd.NoMedia() &&
			h.HasDescSent && h.SelRcvd.Answers == h.DescSent.ID {
			expFrom = media.AddrPort{Addr: h.SelRcvd.Addr, Port: h.SelRcvd.Port}
			expCodec = h.SelRcvd.Codec
		}
	}
	agent.SetSending(sendTo, sendCodec)
	agent.SetExpecting(expFrom, expCodec, listening)
}

// Call opens a media channel of medium m toward addr, over a new
// signaling channel with the given name (the !open of Figure 5).
func (d *Device) Call(channel, addr string, m sig.Medium) error {
	if err := d.r.Connect(channel, addr); err != nil {
		return err
	}
	d.r.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewOpenSlot(box.TunnelSlot(channel, 0), m, d.prof))
		d.refreshAgent(ctx.Box())
	})
	return nil
}

// OpenOn opens a media channel of medium m on an existing signaling
// channel (e.g. a device with a permanent channel to its PBX). It
// waits briefly for the channel if it was accepted asynchronously.
func (d *Device) OpenOn(channel string, m sig.Medium) {
	d.r.AwaitChannel(channel, 5*time.Second)
	d.r.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewOpenSlot(box.TunnelSlot(channel, 0), m, d.prof))
		d.refreshAgent(ctx.Box())
	})
}

// HoldOn switches the device's end of a channel to a holdslot with the
// device's own profile (the normal in-call goal).
func (d *Device) HoldOn(channel string) {
	d.clearRing(channel)
	d.r.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewHoldSlot(box.TunnelSlot(channel, 0), d.prof))
		d.refreshAgent(ctx.Box())
	})
}

// Ringing returns the channels with unanswered incoming opens.
func (d *Device) Ringing() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.ringing))
	for ch := range d.ringing {
		out = append(out, ch)
	}
	sort.Strings(out)
	return out
}

func (d *Device) clearRing(channel string) {
	d.mu.Lock()
	delete(d.ringing, channel)
	d.mu.Unlock()
}

// Answer accepts the pending open on a channel (the !accept of
// Figure 5).
func (d *Device) Answer(channel string) {
	d.clearRing(channel)
	d.r.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewHoldSlot(box.TunnelSlot(channel, 0), d.prof))
		d.refreshAgent(ctx.Box())
	})
}

// Reject declines the pending open on a channel (the !reject of
// Figure 5, realized as a close).
func (d *Device) Reject(channel string) {
	d.clearRing(channel)
	d.r.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewCloseSlot(box.TunnelSlot(channel, 0)))
		d.refreshAgent(ctx.Box())
	})
}

// HangUp destroys the signaling channel entirely, the typical
// single-medium behavior (paper Section IV-B).
func (d *Device) HangUp(channel string) {
	d.clearRing(channel)
	d.r.Do(func(ctx *box.Ctx) {
		ctx.Teardown(channel)
		d.refreshAgent(ctx.Box())
	})
}

// SetMute changes the device's mute flags (the !modify of Figure 5)
// and pushes the change to every goal.
func (d *Device) SetMute(muteIn, muteOut bool) {
	d.r.Do(func(ctx *box.Ctx) {
		inCh := d.prof.SetMuteIn(muteIn)
		outCh := d.prof.SetMuteOut(muteOut)
		if !inCh && !outCh {
			return
		}
		for _, name := range ctx.Box().SlotNames() {
			ctx.Refresh(name, inCh, outCh)
		}
		d.refreshAgent(ctx.Box())
	})
}

// Rehome moves the device's media socket to a new address and port —
// an endpoint changing "its IP address, port number, or codec choice
// without changing its muting" (paper Section VI, footnote 4), the
// mechanism paper Section X-F proposes for mobility. A fresh
// descriptor propagates along every signaling path; far ends answer
// with new selectors and media retargets without re-opening anything.
func (d *Device) Rehome(addr string, port int) {
	d.r.Do(func(ctx *box.Ctx) {
		d.prof.Addr = addr
		d.prof.Port = port
		if d.cfg.Plane != nil {
			fresh := d.cfg.Plane.Agent(d.name, media.AddrPort{Addr: addr, Port: port})
			d.mu.Lock()
			d.agent = fresh
			d.mu.Unlock()
			d.startPacer(fresh)
		}
		for _, name := range ctx.Box().SlotNames() {
			ctx.Refresh(name, true, false)
		}
		d.refreshAgent(ctx.Box())
	})
}

// SendApp emits an application meta-signal on a channel, e.g. the
// "paid" event the IVR resource sends to the prepaid-card server.
func (d *Device) SendApp(channel, app string, attrs []sig.Attr) {
	d.r.Do(func(ctx *box.Ctx) {
		ctx.SendMeta(channel, sig.Meta{Kind: sig.MetaApp, App: app, Attrs: attrs})
	})
}

// SlotState reports the protocol state of the device's slot on a
// channel, for tests and monitoring.
func (d *Device) SlotState(channel string) (st slot.State, enabled bool, ok bool) {
	d.r.Do(func(ctx *box.Ctx) {
		s := ctx.Box().Slot(box.TunnelSlot(channel, 0))
		if s != nil {
			st, enabled, ok = s.State(), s.Enabled(), true
		}
	})
	return st, enabled, ok
}

// ringGoal is the pre-answer goal of an interactive device: it leaves
// an incoming open pending (the user interface is "ringing") and only
// acknowledges protocol obligations. Answer or Reject replace it.
type ringGoal struct {
	name string
}

func (g *ringGoal) Kind() string        { return "ringing" }
func (g *ringGoal) SlotNames() []string { return []string{g.name} }

func (g *ringGoal) Attach(ss core.Slots) ([]core.Action, error) { return nil, nil }

func (g *ringGoal) OnEvent(ss core.Slots, name string, ev slot.Event, in sig.Signal) ([]core.Action, error) {
	em := core.NewEmitter(ss)
	switch ev {
	case slot.EvClose:
		// Caller gave up before the user answered.
		em.Emit(name, sig.CloseAck())
	default:
		// EvOpen: keep ringing. Everything else cannot occur before an
		// oack is sent.
	}
	acts, err := em.Done()
	return acts, err
}

func (g *ringGoal) Refresh(core.Slots, bool, bool) ([]core.Action, error) { return nil, nil }

func (g *ringGoal) Clone() core.Goal { c := *g; return &c }

func (g *ringGoal) AppendEncode(dst []byte) []byte {
	dst = append(dst, "ring:"...)
	return append(dst, g.name...)
}
