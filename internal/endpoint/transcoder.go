// Transcoder: the media resource of paper Section III-A that is "the
// endpoint of two separate media channels... Internally, the resource
// reads media packets from one channel, performs some signal
// processing such as transcoding on them, and writes the resulting
// packets to the other channel. From a user viewpoint, this resource
// is an application server in the middle of the system, performing
// some almost-transparent operation on one media stream for the
// benefit of two user devices at the periphery. From our viewpoint the
// two streams are distinguishable because they use different data
// encodings."
//
// A transcoder therefore does NOT flowlink its two slots — splicing
// descriptors end to end would force the endpoints to agree on a
// codec, which is exactly what they cannot do. Each side terminates on
// the transcoder's own media socket with that side's codec menu, and
// the resource relays between them.
package endpoint

import (
	"sync"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/media"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/transport"
)

// TranscoderConfig configures a transcoder between two codec worlds.
type TranscoderConfig struct {
	Name  string
	Net   transport.Network
	Plane media.Registry
	// Target is the onward address (side B) dialed when a caller
	// reaches side A.
	Target string
	// ACodecs and BCodecs are the codec menus of the two sides.
	ACodecs []sig.Codec
	BCodecs []sig.Codec
	// MediaAddr/BasePort locate the two media sockets (BasePort for
	// side A, BasePort+2 for side B).
	MediaAddr string
	BasePort  int
}

// Transcoder relays media between two channels with different codecs.
type Transcoder struct {
	name string
	r    *box.Runner
	cfg  TranscoderConfig

	mu     sync.Mutex
	agentA *media.Agent
	agentB *media.Agent
	profA  *core.EndpointProfile
	profB  *core.EndpointProfile
}

// NewTranscoder creates and starts a transcoder listening at its name.
func NewTranscoder(cfg TranscoderConfig) (*Transcoder, error) {
	if cfg.MediaAddr == "" {
		cfg.MediaAddr = cfg.Name
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 8000
	}
	tc := &Transcoder{name: cfg.Name, cfg: cfg}
	tc.profA = core.NewEndpointProfile(cfg.Name+"/a", cfg.MediaAddr, cfg.BasePort, cfg.ACodecs, cfg.ACodecs)
	tc.profB = core.NewEndpointProfile(cfg.Name+"/b", cfg.MediaAddr, cfg.BasePort+2, cfg.BCodecs, cfg.BCodecs)
	if cfg.Plane != nil {
		tc.agentA = cfg.Plane.Agent(cfg.Name+"/a", media.AddrPort{Addr: cfg.MediaAddr, Port: cfg.BasePort})
		tc.agentB = cfg.Plane.Agent(cfg.Name+"/b", media.AddrPort{Addr: cfg.MediaAddr, Port: cfg.BasePort + 2})
	}

	b := box.New(cfg.Name, tc.profA)
	b.Hook = func(ctx *box.Ctx, ev *box.Event) { tc.refreshAgents(ctx.Box()) }
	prog := &box.Program{
		Initial: "waiting",
		States: []*box.State{
			{
				// An incoming open on side A triggers the onward leg.
				Name: "waiting",
				Trans: []box.Trans{
					{When: func(ctx *box.Ctx) bool {
						return ctx.IsOpened(box.TunnelSlot("in0", 0)) || ctx.IsFlowing(box.TunnelSlot("in0", 0))
					}, To: "bridging",
						Do: func(ctx *box.Ctx) { ctx.Dial("out", cfg.Target) }},
				},
			},
			{
				// Terminate media on both sides with side-local codecs.
				Name: "bridging",
				Annots: []box.Annot{
					{Kind: box.AnnHold, Slot1: box.TunnelSlot("in0", 0), Profile: tc.profA},
					{Kind: box.AnnOpen, Slot1: box.TunnelSlot("out", 0), Medium: sig.Audio, Profile: tc.profB},
				},
				Trans: []box.Trans{
					{When: func(ctx *box.Ctx) bool { return ctx.OnMeta("in0", sig.MetaTeardown) }, To: "done",
						Do: func(ctx *box.Ctx) { ctx.Teardown("out") }},
					{When: func(ctx *box.Ctx) bool { return ctx.OnMeta("out", sig.MetaTeardown) }, To: "done",
						Do: func(ctx *box.Ctx) { ctx.Teardown("in0") }},
				},
			},
			{Name: "done"},
		},
	}
	tc.r = box.NewRunner(b, cfg.Net)
	tc.r.SetProgram(prog)
	if err := tc.r.Listen(cfg.Name, nil); err != nil {
		tc.r.Stop()
		return nil, err
	}
	return tc, nil
}

// refreshAgents mirrors the two slots into the two agents. A side
// transmits whenever the opposite side has live input — the relay.
func (tc *Transcoder) refreshAgents(b *box.Box) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.agentA == nil {
		return
	}
	type side struct {
		s     *slot.Slot
		agent *media.Agent
	}
	sides := [2]side{
		{b.Slot(box.TunnelSlot("in0", 0)), tc.agentA},
		{b.Slot(box.TunnelSlot("out", 0)), tc.agentB},
	}
	// First pass: reception expectations per side.
	var hasInput [2]bool
	for i, sd := range sides {
		var expFrom media.AddrPort
		var expCodec sig.Codec
		listening := false
		if sd.s != nil && sd.s.State() == slot.Flowing {
			h := sd.s.Hist()
			if h.HasDescSent && !h.DescSent.NoMedia() {
				listening = true
			}
			if h.HasSelRcvd && !h.SelRcvd.NoMedia() && h.HasDescSent && h.SelRcvd.Answers == h.DescSent.ID {
				expFrom = media.AddrPort{Addr: h.SelRcvd.Addr, Port: h.SelRcvd.Port}
				expCodec = h.SelRcvd.Codec
				hasInput[i] = true
			}
		}
		sd.agent.SetExpecting(expFrom, expCodec, listening)
	}
	// Second pass: a side transmits iff it is enabled and the OTHER
	// side is feeding it input to transcode.
	for i, sd := range sides {
		var sendTo media.AddrPort
		var sendCodec sig.Codec
		if sd.s != nil && sd.s.State() == slot.Flowing && sd.s.Enabled() && hasInput[1-i] {
			if d, ok := sd.s.Desc(); ok && !d.NoMedia() {
				sendTo = media.AddrPort{Addr: d.Addr, Port: d.Port}
				sendCodec = sd.s.Hist().SelSent.Codec
			}
		}
		sd.agent.SetSending(sendTo, sendCodec)
	}
}

// Runner exposes the transcoder's box runner.
func (tc *Transcoder) Runner() *box.Runner { return tc.r }

// Stop shuts the transcoder down.
func (tc *Transcoder) Stop() { tc.r.Stop() }
