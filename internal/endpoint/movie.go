// MovieServer: the media resource of the collaborative-television
// scenario (paper Figure 8). Each signaling channel to the server is
// associated with a movie and a time pointer; because all the tunnels
// of one channel share that association, the media on all of them is
// from the same movie at the same time point. Pause/play/seek commands
// arrive as meta-signals and affect all the channel's media streams at
// once.
package endpoint

import (
	"fmt"
	"strconv"
	"sync"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/media"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/transport"
)

// MovieSession is the state the server associates with one signaling
// channel: which movie, where in it, and whether it is playing.
type MovieSession struct {
	Movie   string
	Pos     int // seconds into the movie
	Playing bool
}

// MovieServer serves movies over per-tunnel media channels.
type MovieServer struct {
	name string
	r    *box.Runner

	mu       sync.Mutex
	sessions map[string]*MovieSession         // channel -> session
	profs    map[string]*core.EndpointProfile // slot -> media profile
	agents   map[string]*media.Agent
	nport    int
}

// NewMovieServer creates and starts a movie server listening at its
// name. A dialing box names the movie in the setup meta-signal's
// "movie" attribute.
func NewMovieServer(name string, net transport.Network, plane media.Registry) (*MovieServer, error) {
	ms := &MovieServer{
		name:     name,
		sessions: map[string]*MovieSession{},
		profs:    map[string]*core.EndpointProfile{},
		agents:   map[string]*media.Agent{},
	}
	b := box.New(name, core.ServerProfile{Name: name})
	b.DefaultGoal = func(slotName string) core.Goal {
		return core.NewHoldSlot(slotName, ms.slotProfile(slotName, plane))
	}
	b.Hook = func(ctx *box.Ctx, ev *box.Event) {
		if ev.Kind == box.EvEnvelope && ev.Env.IsMeta() {
			ms.onMeta(ctx, ev.Channel, ev.Env.Meta)
		}
		ms.refreshAgents(ctx.Box())
	}
	ms.r = box.NewRunner(b, net)
	if err := ms.r.Listen(name, nil); err != nil {
		ms.r.Stop()
		return nil, err
	}
	return ms, nil
}

func (ms *MovieServer) onMeta(ctx *box.Ctx, channel string, m *sig.Meta) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	switch m.Kind {
	case sig.MetaSetup:
		movie := m.Get("movie")
		pos := 0
		if p, err := strconv.Atoi(m.Get("pos")); err == nil {
			pos = p
		}
		ms.sessions[channel] = &MovieSession{Movie: movie, Pos: pos}
		ctx.SendMeta(channel, sig.Meta{Kind: sig.MetaAvailable})
	case sig.MetaTeardown:
		delete(ms.sessions, channel)
	case sig.MetaApp:
		s := ms.sessions[channel]
		if s == nil {
			return
		}
		switch m.App {
		case "watch":
			// (Re)associate the channel with a movie and time pointer.
			s.Movie = m.Get("movie")
			if p, err := strconv.Atoi(m.Get("pos")); err == nil {
				s.Pos = p
			}
		case "play":
			s.Playing = true
		case "pause":
			s.Playing = false
		case "seek":
			if p, err := strconv.Atoi(m.Get("pos")); err == nil {
				s.Pos = p
			}
		}
	}
}

// slotProfile builds (once) the per-tunnel media profile and agent.
// Video tunnels get video codecs; the medium is discovered from the
// open signal, so the profile offers both menus and the opener's
// descriptor decides.
func (ms *MovieServer) slotProfile(slotName string, plane media.Registry) *core.EndpointProfile {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if p := ms.profs[slotName]; p != nil {
		return p
	}
	ms.nport++
	port := 7000 + ms.nport
	codecs := []sig.Codec{sig.G711, sig.G726, sig.H264, sig.H263}
	p := core.NewEndpointProfile(fmt.Sprintf("%s/%s", ms.name, slotName), ms.name, port, codecs, codecs)
	ms.profs[slotName] = p
	if plane != nil {
		ms.agents[slotName] = plane.Agent(fmt.Sprintf("%s/%s", ms.name, slotName), media.AddrPort{Addr: ms.name, Port: port})
	}
	return p
}

// refreshAgents mirrors slot state into per-tunnel agents: the server
// transmits on every enabled tunnel whose session is playing.
func (ms *MovieServer) refreshAgents(b *box.Box) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for slotName, agent := range ms.agents {
		s := b.Slot(slotName)
		var sendTo media.AddrPort
		var sendCodec sig.Codec
		ch := slotChan(slotName)
		sess := ms.sessions[ch]
		if s != nil && s.State() == slot.Flowing && s.Enabled() && sess != nil && sess.Playing {
			if d, ok := s.Desc(); ok && !d.NoMedia() {
				sendTo = media.AddrPort{Addr: d.Addr, Port: d.Port}
				sendCodec = s.Hist().SelSent.Codec
			}
		}
		agent.SetSending(sendTo, sendCodec)
	}
}

// Session returns a snapshot of the session on a channel.
func (ms *MovieServer) Session(channel string) (MovieSession, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	s := ms.sessions[channel]
	if s == nil {
		return MovieSession{}, false
	}
	return *s, true
}

// SessionCount returns the number of live sessions.
func (ms *MovieServer) SessionCount() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return len(ms.sessions)
}

// Runner exposes the server's box runner.
func (ms *MovieServer) Runner() *box.Runner { return ms.r }

// Stop shuts the server down.
func (ms *MovieServer) Stop() { ms.r.Stop() }
