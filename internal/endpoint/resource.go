// Media-processing resources (paper Sections I and IV-B): endpoints
// that perform functions such as playing tones, audio signaling,
// mixing, and media serving. At the signaling level they are ordinary
// endpoints that accept whatever channels are opened toward them.
package endpoint

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/media"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/transport"
)

// NewToneGenerator creates a tone-generator resource: it accepts any
// audio channel and plays a tone into it (busy tone, ringback) — the
// resource the Click-to-Dial program flowlinks to user 1 in states
// busyTone and ringback (paper Figure 6). "Tone generation in the
// device is often not feasible, because the device will not generate
// tones when it believes it is playing the role of the called party"
// (paper Section IV-B, footnote).
func NewToneGenerator(name string, net transport.Network, plane media.Registry) (*Device, error) {
	return NewDevice(Config{Name: name, Net: net, Plane: plane, AutoAccept: true})
}

// NewIVR creates an audio-signaling resource: announcements, tones,
// touchtone detection (paper Section I). It accepts any audio channel;
// the application drives it with SendApp/OnApp meta-signals, like the
// resource V that verifies prepaid funds in paper Figure 3.
func NewIVR(name string, net transport.Network, plane media.Registry, onApp func(channel, app string, attrs []sig.Attr)) (*Device, error) {
	return NewDevice(Config{Name: name, Net: net, Plane: plane, AutoAccept: true, OnApp: onApp})
}

// Bridge is a conference bridge: a media resource that performs audio
// mixing (paper Figure 7). Each accepted channel is a leg with its own
// media socket; in the direction toward the bridge an audio channel
// carries the voice of a single user, and away from the bridge the
// mixed voices of all the users except the one the channel goes to.
//
// Partial muting — business muting, emergency-services muting, whisper
// coaching — is achieved by the bridge's mix matrix, configured by the
// application server through standardized meta-signals (paper Section
// IV-B): a MetaApp "mix" signal with attrs out=<leg> in=<legs,comma>.
type Bridge struct {
	name string
	r    *box.Runner

	mu     sync.Mutex
	legs   map[string]*core.EndpointProfile // channel -> leg profile
	agents map[string]*media.Agent
	mix    map[string]map[string]bool // out leg -> audible input legs
	nport  int
}

// NewBridge creates and starts a conference bridge listening at its
// name.
func NewBridge(name string, net transport.Network, plane media.Registry) (*Bridge, error) {
	br := &Bridge{
		name:   name,
		legs:   map[string]*core.EndpointProfile{},
		agents: map[string]*media.Agent{},
		mix:    map[string]map[string]bool{},
	}
	b := box.New(name, core.ServerProfile{Name: name})
	b.DefaultGoal = func(slotName string) core.Goal {
		return core.NewHoldSlot(slotName, br.legProfile(slotName, plane))
	}
	b.Hook = func(ctx *box.Ctx, ev *box.Event) {
		if ev.Kind == box.EvEnvelope && ev.Env.IsMeta() {
			m := ev.Env.Meta
			if m.Kind == sig.MetaSetup {
				ctx.SendMeta(ev.Channel, sig.Meta{Kind: sig.MetaAvailable})
			}
			if m.Kind == sig.MetaApp && m.App == "mix" {
				br.applyMix(m)
			}
		}
		br.refreshAgents(ctx.Box())
	}
	br.r = box.NewRunner(b, net)
	if err := br.r.Listen(name, nil); err != nil {
		br.r.Stop()
		return nil, err
	}
	return br, nil
}

// legProfile builds (once) the per-leg media profile and agent. Called
// from the box goroutine.
func (br *Bridge) legProfile(slotName string, plane media.Registry) *core.EndpointProfile {
	ch := slotChan(slotName)
	br.mu.Lock()
	defer br.mu.Unlock()
	if p := br.legs[ch]; p != nil {
		return p
	}
	br.nport++
	port := 6000 + br.nport
	p := core.NewEndpointProfile(fmt.Sprintf("%s/%s", br.name, ch), br.name, port, DefaultCodecs, DefaultCodecs)
	br.legs[ch] = p
	if plane != nil {
		br.agents[ch] = plane.Agent(fmt.Sprintf("%s/%s", br.name, ch), media.AddrPort{Addr: br.name, Port: port})
	}
	// Default mix: everyone hears everyone else.
	br.mix[ch] = nil // nil means "all other legs"
	return p
}

// slotChan recovers the channel name from a slot name in the
// box.TunnelSlot convention.
func slotChan(slotName string) string {
	if i := strings.LastIndex(slotName, ".t"); i >= 0 {
		return slotName[:i]
	}
	return slotName
}

// applyMix configures the mix matrix from a "mix" meta-signal.
func (br *Bridge) applyMix(m *sig.Meta) {
	out := m.Get("out")
	if out == "" {
		return
	}
	br.mu.Lock()
	defer br.mu.Unlock()
	set := map[string]bool{}
	if ins := m.Get("in"); ins != "" {
		start := 0
		for i := 0; i <= len(ins); i++ {
			if i == len(ins) || ins[i] == ',' {
				if i > start {
					set[ins[start:i]] = true
				}
				start = i + 1
			}
		}
	}
	br.mix[out] = set
}

// refreshAgents mirrors slot state into the per-leg media agents.
func (br *Bridge) refreshAgents(b *box.Box) {
	br.mu.Lock()
	defer br.mu.Unlock()
	for ch, agent := range br.agents {
		s := b.Slot(box.TunnelSlot(ch, 0))
		var sendTo media.AddrPort
		var sendCodec sig.Codec
		var expFrom media.AddrPort
		var expCodec sig.Codec
		listening := false
		if s != nil && s.State() == slot.Flowing {
			h := s.Hist()
			if h.HasDescSent && !h.DescSent.NoMedia() {
				listening = true
			}
			// The bridge transmits on a leg whenever the leg is enabled
			// AND at least one other leg is audible to it.
			if s.Enabled() && br.audibleInputsLocked(ch, b) > 0 {
				if d, ok := s.Desc(); ok && !d.NoMedia() {
					sendTo = media.AddrPort{Addr: d.Addr, Port: d.Port}
					sendCodec = h.SelSent.Codec
				}
			}
			if h.HasSelRcvd && !h.SelRcvd.NoMedia() {
				expFrom = media.AddrPort{Addr: h.SelRcvd.Addr, Port: h.SelRcvd.Port}
				expCodec = h.SelRcvd.Codec
			}
		}
		agent.SetSending(sendTo, sendCodec)
		agent.SetExpecting(expFrom, expCodec, listening)
	}
}

// audibleInputsLocked counts legs currently feeding audio into the mix
// heard by leg out. br.mu must be held.
func (br *Bridge) audibleInputsLocked(out string, b *box.Box) int {
	allowed := br.mix[out]
	n := 0
	for ch := range br.legs {
		if ch == out {
			continue
		}
		if allowed != nil && !allowed[ch] {
			continue
		}
		s := b.Slot(box.TunnelSlot(ch, 0))
		if s == nil || s.State() != slot.Flowing {
			continue
		}
		if h := s.Hist(); h.HasSelRcvd && !h.SelRcvd.NoMedia() {
			n++ // this leg's user is sending into the bridge
		}
	}
	return n
}

// Hears reports which legs are audible in the mix sent to leg out,
// under the current mix matrix (ignoring signaling state), sorted.
func (br *Bridge) Hears(out string) []string {
	br.mu.Lock()
	defer br.mu.Unlock()
	var in []string
	allowed := br.mix[out]
	for ch := range br.legs {
		if ch == out {
			continue
		}
		if allowed == nil || allowed[ch] {
			in = append(in, ch)
		}
	}
	sort.Strings(in)
	return in
}

// Runner exposes the bridge's box runner.
func (br *Bridge) Runner() *box.Runner { return br.r }

// Stop shuts the bridge down.
func (br *Bridge) Stop() { br.r.Stop() }
