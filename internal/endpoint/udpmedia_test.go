package endpoint

import (
	"net"
	"testing"
	"time"

	"ipmedia/internal/media"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

func freeUDPPort(t *testing.T) int {
	t.Helper()
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP("127.0.0.1")})
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	port := c.LocalAddr().(*net.UDPAddr).Port
	c.Close()
	return port
}

// TestDevicePacedUDPMedia runs a full call between two devices whose
// media rides the real UDP plane with paced transmitters: signaling
// over the in-memory network, datagrams over loopback sockets, and —
// unlike the Tick-driven planes — media flowing continuously with no
// external driving at all.
func TestDevicePacedUDPMedia(t *testing.T) {
	plane := media.NewUDPPlane()
	defer plane.Close()
	network := transport.NewMemNetwork()

	mk := func(name string) *Device {
		d, err := NewDevice(Config{
			Name: name, Net: network, Plane: plane,
			MediaAddr: "127.0.0.1", MediaPort: freeUDPPort(t),
			MediaPace: time.Millisecond, MediaPaceBatch: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a := mk("A")
	defer a.Stop()
	b := mk("B")
	defer b.Stop()
	if errs := plane.Errs(); len(errs) > 0 {
		t.Skipf("cannot bind UDP sockets: %v", errs[0])
	}

	eventually := func(what string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if pred() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s", what)
	}

	if err := a.Call("c", "B", sig.Audio); err != nil {
		t.Fatal(err)
	}
	eventually("B ringing", func() bool { return len(b.Ringing()) == 1 })
	b.Answer(b.Ringing()[0])

	eventually("media flowing both ways", func() bool {
		return plane.HasFlow("A", "B") && plane.HasFlow("B", "A")
	})
	// No Tick anywhere: the pacers alone must push real datagrams
	// through the loopback sockets into both agents.
	eventually("paced packets accepted both ways", func() bool {
		return a.Agent().Stats().Accepted > 20 && b.Agent().Stats().Accepted > 20
	})

	a.HangUp("c")
	eventually("media stopped", func() bool {
		return !plane.HasFlow("A", "B") && !plane.HasFlow("B", "A")
	})
	if errs := plane.Errs(); len(errs) > 0 {
		t.Fatalf("plane errors: %v", errs)
	}
}
