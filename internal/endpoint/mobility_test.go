package endpoint

import (
	"testing"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/sig"
)

// TestRehomeMidCall: an endpoint changes its media address mid-call
// (paper Section VI footnote 4; the mobility application of Section
// X-F). The fresh descriptor propagates, the far end answers a new
// selector, and media retargets — without reopening the channel.
func TestRehomeMidCall(t *testing.T) {
	f := newFixture(t)
	defer f.cleanup()
	a := f.device("A", 5004, false)
	f.device("B", 5006, true)
	if err := a.Call("c", "B", sig.Audio); err != nil {
		t.Fatal(err)
	}
	f.eventually("media both ways", func() bool {
		return f.plane.HasFlow("A", "B") && f.plane.HasFlow("B", "A")
	})
	f.plane.Tick(5)
	before := a.Agent().Stats()
	if before.Accepted == 0 {
		t.Fatal("setup: A must be receiving")
	}

	// A moves to a new subnet: same name, new media socket.
	a.Rehome("A-new", 6004)

	// Media keeps flowing both ways, now to the new socket.
	f.eventually("flows retargeted", func() bool {
		return f.plane.HasFlow("A", "B") && f.plane.HasFlow("B", "A")
	})
	f.eventually("packets at the new home", func() bool {
		f.plane.Tick(1)
		return a.Agent().Stats().Accepted > 0 // fresh agent at the new address
	})
	// The channel was never re-opened: still the same flowing slot.
	st, enabled, ok := a.SlotState("c")
	if !ok || st.String() != "flowing" || !enabled {
		t.Fatalf("slot after rehome: %v enabled=%v", st, enabled)
	}
}

// TestRehomeTwiceAndBack: descriptor identity is content-addressed, so
// moving back to a previous address re-uses its descriptor ID; the
// path still converges every time.
func TestRehomeTwiceAndBack(t *testing.T) {
	f := newFixture(t)
	defer f.cleanup()
	a := f.device("A", 5004, false)
	f.device("B", 5006, true)
	if err := a.Call("c", "B", sig.Audio); err != nil {
		t.Fatal(err)
	}
	f.eventually("media", func() bool { return f.plane.HasFlow("B", "A") })
	for i := 0; i < 3; i++ {
		a.Rehome("A-roam", 6004)
		f.eventually("roamed", func() bool {
			f.plane.Tick(1)
			return a.Agent().Stats().Accepted > 0
		})
		a.Rehome("A", 5004)
		f.eventually("home again", func() bool {
			f.plane.Tick(1)
			return a.Agent().Stats().Accepted > 0
		})
	}
}

// TestPeerCrashCleanup: failure injection — one side of a call dies
// without any signaling. The transport closes, the survivor
// synthesizes a teardown, destroys the channel, and media stops.
func TestPeerCrashCleanup(t *testing.T) {
	f := newFixture(t)
	defer f.cleanup()
	a := f.device("A", 5004, false)
	b := f.device("B", 5006, true)
	if err := a.Call("c", "B", sig.Audio); err != nil {
		t.Fatal(err)
	}
	f.eventually("media both ways", func() bool {
		return f.plane.HasFlow("A", "B") && f.plane.HasFlow("B", "A")
	})
	// A crashes: no close, no teardown, just gone.
	a.Stop()
	f.eventually("B cleaned up", func() bool {
		has := true
		b.Runner().Do(func(ctx *box.Ctx) { has = ctx.Box().HasChannel("in0") })
		return !has
	})
	f.eventually("B's media stopped", func() bool { return !f.plane.HasFlow("B", "A") })
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		for _, e := range b.Runner().Errs() {
			t.Fatalf("survivor error: %v", e)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
