// Package path implements the descriptive model's signaling paths
// (paper Section III-A) and the compositional path semantics of
// Section V: a signaling path is a maximal chain of tunnels and
// flowlinks meeting at slots; each path corresponds to an actual or
// potential media channel between the path endpoints, and correctness
// is specified per path type by the temporal formulas evaluated in
// package ltl.
package path

import (
	"fmt"
	"sort"

	"ipmedia/internal/ltl"
	"ipmedia/internal/slot"
)

// SlotRef identifies a slot globally.
type SlotRef struct {
	Box  string
	Slot string
}

func (r SlotRef) String() string { return r.Box + "/" + r.Slot }

// Topology is a snapshot of the graph of boxes, tunnels, and flowlinks
// from which signaling paths are computed.
type Topology struct {
	tunnels map[SlotRef]SlotRef
	links   map[SlotRef]SlotRef
	goals   map[SlotRef]string // goal kind controlling each slot
}

// NewTopology creates an empty topology.
func NewTopology() *Topology {
	return &Topology{
		tunnels: map[SlotRef]SlotRef{},
		links:   map[SlotRef]SlotRef{},
		goals:   map[SlotRef]string{},
	}
}

// Tunnel records a tunnel between two slots (in different boxes).
func (t *Topology) Tunnel(a, b SlotRef) {
	t.tunnels[a], t.tunnels[b] = b, a
}

// Link records a flowlink joining two slots within one box.
func (t *Topology) Link(a, b SlotRef) {
	t.links[a], t.links[b] = b, a
}

// SetGoal records the kind of the goal object controlling a slot
// ("openSlot", "closeSlot", "holdSlot", ...).
func (t *Topology) SetGoal(r SlotRef, kind string) { t.goals[r] = kind }

// Goal returns the recorded goal kind for a slot.
func (t *Topology) Goal(r SlotRef) string { return t.goals[r] }

// Path is one signaling path: the slots along it, from one path end to
// the other. Slots[0] and Slots[len-1] are the path endpoints;
// interior slots come in flowlinked pairs.
type Path struct {
	Slots []SlotRef
}

// Ends returns the two endpoint slots.
func (p Path) Ends() (SlotRef, SlotRef) {
	return p.Slots[0], p.Slots[len(p.Slots)-1]
}

// Hops returns the number of tunnels in the path.
func (p Path) Hops() int { return len(p.Slots) / 2 }

// Flowlinks returns the number of flowlinks in the path.
func (p Path) Flowlinks() int { return (len(p.Slots) - 2) / 2 }

func (p Path) String() string {
	s := ""
	for i, r := range p.Slots {
		if i > 0 {
			if i%2 == 1 {
				s += " ~ " // tunnel
			} else {
				s += " = " // flowlink
			}
		}
		s += r.String()
	}
	return s
}

// Paths computes all maximal signaling paths in the topology. Cyclic
// configurations are reported as an error: "cyclic signaling paths are
// not useful for controlling media channels... we assume that the
// configuration process prevents cycles" (paper Section III-A).
func (t *Topology) Paths() ([]Path, error) {
	// Path endpoints are slots with a tunnel but no flowlink.
	var endpoints []SlotRef
	for s := range t.tunnels {
		if _, linked := t.links[s]; !linked {
			endpoints = append(endpoints, s)
		}
	}
	sort.Slice(endpoints, func(i, j int) bool {
		return endpoints[i].String() < endpoints[j].String()
	})
	seen := map[SlotRef]bool{}
	var paths []Path
	for _, e := range endpoints {
		if seen[e] {
			continue
		}
		p := Path{Slots: []SlotRef{e}}
		seen[e] = true
		cur := e
		guard := 0
		for {
			if guard++; guard > 10000 {
				return nil, fmt.Errorf("path: runaway walk from %s", e)
			}
			peer, ok := t.tunnels[cur]
			if !ok {
				return nil, fmt.Errorf("path: slot %s has no tunnel", cur)
			}
			if seen[peer] {
				return nil, fmt.Errorf("path: cycle detected at %s", peer)
			}
			p.Slots = append(p.Slots, peer)
			seen[peer] = true
			next, linked := t.links[peer]
			if !linked {
				break // far path end
			}
			if seen[next] {
				return nil, fmt.Errorf("path: cycle detected at %s", next)
			}
			p.Slots = append(p.Slots, next)
			seen[next] = true
			cur = next
		}
		paths = append(paths, p)
	}
	// Detect pure cycles (no endpoints at all).
	for s := range t.links {
		if !seen[s] {
			if _, hasTunnel := t.tunnels[s]; hasTunnel {
				return nil, fmt.Errorf("path: cyclic signaling path through %s", s)
			}
		}
	}
	return paths, nil
}

// Spec returns the temporal specification for a path, from the goal
// kinds recorded for its two end slots (paper Section V).
func (t *Topology) Spec(p Path) (ltl.PathProp, error) {
	l, r := p.Ends()
	return ltl.SpecFor(t.goals[l], t.goals[r])
}

// BothClosed evaluates the bothClosed path state over the two end
// slots (paper Section V): Lclosed ∧ Rclosed, in user-interface terms
// (the protocol state closing reads as closed).
func BothClosed(l, r *slot.Slot) bool {
	return l.IsClosed() && r.IsClosed()
}

// BothFlowing evaluates the bothFlowing path state using the
// history-variable definition the paper uses in model checking
// (Section VIII-A): both ends flowing, each end has most recently
// received the descriptor most recently sent by the other, and each
// end has most recently received a selector answering its own most
// recent descriptor.
func BothFlowing(l, r *slot.Slot) bool {
	if l.State() != slot.Flowing || r.State() != slot.Flowing {
		return false
	}
	ld, lok := l.Desc()
	rd, rok := r.Desc()
	if !lok || !rok {
		return false
	}
	lh, rh := l.Hist(), r.Hist()
	return ld.Equal(rh.DescSent) && rd.Equal(lh.DescSent) &&
		lh.HasSelRcvd && lh.SelRcvd.Answers == lh.DescSent.ID &&
		rh.HasSelRcvd && rh.SelRcvd.Answers == rh.DescSent.ID &&
		l.Medium() == r.Medium()
}

// Observe builds the ltl observation for a pair of path-end slots.
func Observe(l, r *slot.Slot) ltl.Obs {
	return ltl.Obs{BothClosed: BothClosed(l, r), BothFlowing: BothFlowing(l, r)}
}

// EnabledConsistent checks the Section V mute consistency at a
// bothFlowing state: Lenabled = ¬LmuteIn ∧ ¬RmuteOut and symmetrically
// — expressed through the slots' enabled history bits and the noMedia
// content of the descriptors and selectors exchanged.
func EnabledConsistent(l, r *slot.Slot) bool {
	lh, rh := l.Hist(), r.Hist()
	// l.Enabled: l has sent a real selector — possible only if the
	// descriptor it answers (r's) offered media, and required if it did
	// and l was willing.
	if l.Enabled() {
		if d, ok := l.Desc(); !ok || d.NoMedia() {
			return false
		}
	}
	if r.Enabled() {
		if d, ok := r.Desc(); !ok || d.NoMedia() {
			return false
		}
	}
	// A noMedia descriptor must be answered by a noMedia selector.
	if lh.HasDescSent && lh.DescSent.NoMedia() && rh.HasSelSent && !rh.SelSent.NoMedia() &&
		rh.SelSent.Answers == lh.DescSent.ID {
		return false
	}
	if rh.HasDescSent && rh.DescSent.NoMedia() && lh.HasSelSent && !lh.SelSent.NoMedia() &&
		lh.SelSent.Answers == rh.DescSent.ID {
		return false
	}
	return true
}
