package path

import (
	"testing"

	"ipmedia/internal/ltl"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

func ref(b, s string) SlotRef { return SlotRef{Box: b, Slot: s} }

// figure3Topology builds the prepaid-card configuration of paper
// Figure 3, Snapshot 2: A - PBX - PC with PC flowlinking C to V and
// holding A.
func figure3Topology() *Topology {
	t := NewTopology()
	// Tunnels: A~PBX, PBX~PC, PC~C, PC~V, PBX~B.
	t.Tunnel(ref("A", "a"), ref("PBX", "pa"))
	t.Tunnel(ref("PBX", "ppc"), ref("PC", "pcp"))
	t.Tunnel(ref("PC", "pcc"), ref("C", "c"))
	t.Tunnel(ref("PC", "pcv"), ref("V", "v"))
	t.Tunnel(ref("PBX", "pb"), ref("B", "b"))
	// Snapshot 2: PBX links A's channel onward to PC; PC links C to V
	// and holds A('s channel end).
	t.Link(ref("PBX", "pa"), ref("PBX", "ppc"))
	t.Link(ref("PC", "pcc"), ref("PC", "pcv"))
	// Goals at path ends.
	t.SetGoal(ref("A", "a"), "openSlot")
	t.SetGoal(ref("PC", "pcp"), "holdSlot")
	t.SetGoal(ref("C", "c"), "openSlot")
	t.SetGoal(ref("V", "v"), "holdSlot")
	t.SetGoal(ref("PBX", "pb"), "holdSlot")
	t.SetGoal(ref("B", "b"), "openSlot")
	return t
}

func TestPathsOfFigure3(t *testing.T) {
	top := figure3Topology()
	paths, err := top.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("want 3 paths, got %d: %v", len(paths), paths)
	}
	// Find the A path: A/a ~ PBX/pa = PBX/ppc ~ PC/pcp.
	var aPath, cPath Path
	for _, p := range paths {
		l, r := p.Ends()
		switch {
		case l.Box == "A" || r.Box == "A":
			aPath = p
		case l.Box == "C" || r.Box == "C":
			cPath = p
		}
	}
	if len(aPath.Slots) != 4 || aPath.Flowlinks() != 1 || aPath.Hops() != 2 {
		t.Fatalf("A path wrong: %v", aPath)
	}
	if len(cPath.Slots) != 4 || cPath.Flowlinks() != 1 {
		t.Fatalf("C path wrong: %v", cPath)
	}
	// Specs: A's path is openSlot/holdSlot -> □◇bothFlowing; C's path
	// (C to V) likewise.
	spec, err := top.Spec(aPath)
	if err != nil {
		t.Fatal(err)
	}
	if spec != ltl.RecFlowing {
		t.Fatalf("A path spec = %s", spec)
	}
}

func TestCycleDetection(t *testing.T) {
	top := NewTopology()
	top.Tunnel(ref("X", "a"), ref("Y", "b"))
	top.Tunnel(ref("Y", "c"), ref("X", "d"))
	top.Link(ref("X", "a"), ref("X", "d"))
	top.Link(ref("Y", "b"), ref("Y", "c"))
	if _, err := top.Paths(); err == nil {
		t.Fatal("cyclic configuration must be rejected")
	}
}

func TestLongChain(t *testing.T) {
	top := NewTopology()
	// L ~ m1a = m1b ~ m2a = m2b ~ m3a = m3b ~ R: 3 flowlinks, 4 hops.
	top.Tunnel(ref("L", "l"), ref("M1", "a"))
	top.Link(ref("M1", "a"), ref("M1", "b"))
	top.Tunnel(ref("M1", "b"), ref("M2", "a"))
	top.Link(ref("M2", "a"), ref("M2", "b"))
	top.Tunnel(ref("M2", "b"), ref("M3", "a"))
	top.Link(ref("M3", "a"), ref("M3", "b"))
	top.Tunnel(ref("M3", "b"), ref("R", "r"))
	paths, err := top.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("want 1 path, got %d", len(paths))
	}
	p := paths[0]
	if p.Flowlinks() != 3 || p.Hops() != 4 || len(p.Slots) != 8 {
		t.Fatalf("chain mis-measured: links=%d hops=%d slots=%d", p.Flowlinks(), p.Hops(), len(p.Slots))
	}
	l, r := p.Ends()
	if !(l == ref("L", "l") && r == ref("R", "r")) && !(l == ref("R", "r") && r == ref("L", "l")) {
		t.Fatalf("wrong path ends: %v %v", l, r)
	}
}

func drive(t *testing.T, l, r *slot.Slot) {
	t.Helper()
	// Bring the pair to flowing with full histories, simulating a
	// zero-length path.
	dl := sig.Descriptor{ID: sig.DescID{Origin: "L", Seq: 1}, Addr: "l", Port: 1, Codecs: []sig.Codec{sig.G711}}
	dr := sig.Descriptor{ID: sig.DescID{Origin: "R", Seq: 1}, Addr: "r", Port: 2, Codecs: []sig.Codec{sig.G711}}
	step := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	step(l.Send(sig.Open(sig.Audio, dl)))
	_, err := r.Receive(sig.Open(sig.Audio, dl))
	step(err)
	step(r.Send(sig.Oack(dr)))
	_, err = l.Receive(sig.Oack(dr))
	step(err)
	step(r.Send(sig.Select(sig.Selector{Answers: dl.ID, Addr: "r", Port: 2, Codec: sig.G711})))
	_, err = l.Receive(sig.Select(sig.Selector{Answers: dl.ID, Addr: "r", Port: 2, Codec: sig.G711}))
	step(err)
	step(l.Send(sig.Select(sig.Selector{Answers: dr.ID, Addr: "l", Port: 1, Codec: sig.G711})))
	_, err = r.Receive(sig.Select(sig.Selector{Answers: dr.ID, Addr: "l", Port: 1, Codec: sig.G711}))
	step(err)
}

func TestBothFlowingPredicate(t *testing.T) {
	l, r := slot.New("l", true), slot.New("r", false)
	if BothFlowing(l, r) {
		t.Fatal("fresh slots are not bothFlowing")
	}
	if !BothClosed(l, r) {
		t.Fatal("fresh slots are bothClosed")
	}
	drive(t, l, r)
	if !BothFlowing(l, r) {
		t.Fatal("established pair must be bothFlowing")
	}
	if BothClosed(l, r) {
		t.Fatal("established pair is not bothClosed")
	}
	if !EnabledConsistent(l, r) {
		t.Fatal("established pair must be enabled-consistent")
	}
	obs := Observe(l, r)
	if !obs.BothFlowing || obs.BothClosed {
		t.Fatalf("bad observation %+v", obs)
	}
}

func TestBothFlowingRequiresFreshSelectors(t *testing.T) {
	l, r := slot.New("l", true), slot.New("r", false)
	drive(t, l, r)
	// L re-describes; until R answers, the path is not bothFlowing.
	d2 := sig.Descriptor{ID: sig.DescID{Origin: "L", Seq: 2}, Addr: "l", Port: 1, Codecs: []sig.Codec{sig.G726}}
	if err := l.Send(sig.Describe(d2)); err != nil {
		t.Fatal(err)
	}
	if BothFlowing(l, r) {
		t.Fatal("stale remote descriptor must break bothFlowing")
	}
	if _, err := r.Receive(sig.Describe(d2)); err != nil {
		t.Fatal(err)
	}
	if BothFlowing(l, r) {
		t.Fatal("selector not yet refreshed; still not bothFlowing")
	}
	sel := sig.Selector{Answers: d2.ID, Addr: "r", Port: 2, Codec: sig.G726}
	if err := r.Send(sig.Select(sel)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Receive(sig.Select(sel)); err != nil {
		t.Fatal(err)
	}
	if !BothFlowing(l, r) {
		t.Fatal("answered describe must restore bothFlowing")
	}
}
