// Telemetry for the slot FSM: per-transition counters, an open-open
// glare counter, a time-to-flowing histogram, and FSM-transition trace
// events. Instruments are resolved once per default registry and
// cached; with telemetry disabled every hot-path hook reduces to a nil
// check.
package slot

import (
	"sync/atomic"

	"ipmedia/internal/telemetry"
)

// Telemetry instrument names exported by this package.
const (
	// MetricTransPrefix prefixes the per-transition counters, e.g.
	// "slot.trans.closed_opening".
	MetricTransPrefix = "slot.trans."
	// MetricGlare counts open-open race resolutions (paper Section
	// VI-B), on both the winning and the losing end.
	MetricGlare = "slot.glare_resolutions"
	// MetricTimeToFlowing is the latency histogram from a slot leaving
	// the closed state to reaching flowing.
	MetricTimeToFlowing = "slot.time_to_flowing"
	// MetricRetransmits counts envelopes retransmitted by the reliable
	// transport layer on behalf of the slots of a channel.
	MetricRetransmits = "slot.retransmits"
	// MetricDupDropped counts received envelopes discarded as
	// duplicates by sequence-number suppression.
	MetricDupDropped = "slot.dup_dropped"
)

const numStates = int(Closing) + 1

// slotMetrics is the instrument set for one registry. The zero value
// (all-nil instruments) is the disabled set.
type slotMetrics struct {
	reg    *telemetry.Registry
	trans  [numStates][numStates]*telemetry.Counter
	glare  *telemetry.Counter
	ttf    *telemetry.Histogram
	tracer *telemetry.Tracer
}

var metricsCache atomic.Pointer[slotMetrics]

// metrics returns the instrument set for the current default registry,
// rebuilding the cache if the default changed since the last call.
func metrics() *slotMetrics {
	reg := telemetry.Default()
	if m := metricsCache.Load(); m != nil && m.reg == reg {
		return m
	}
	m := &slotMetrics{reg: reg}
	if reg != nil {
		for f := 0; f < numStates; f++ {
			for t := 0; t < numStates; t++ {
				m.trans[f][t] = reg.Counter(MetricTransPrefix + stateNames[f] + "_" + stateNames[t])
			}
		}
		m.glare = reg.Counter(MetricGlare)
		m.ttf = reg.Histogram(MetricTimeToFlowing)
		m.tracer = reg.Tracer()
	}
	metricsCache.Store(m)
	return m
}
