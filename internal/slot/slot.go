// Package slot implements the protocol endpoint of the media-control
// signaling protocol: the finite-state machine of paper Figure 9,
// instantiated once per tunnel end.
//
// A Slot object sees all signals received from its tunnel and all
// signals sent to it (paper Section VII). Because of this complete
// view, it maintains the complete implementation-level state of the
// slot: protocol state, medium, and cached descriptor. Policy — which
// signals to send when — belongs to the goal objects in package core;
// the Slot enforces protocol legality and classifies incoming signals
// into events for its goal object.
package slot

import (
	"fmt"
	"time"

	"ipmedia/internal/sig"
)

// State is the protocol state of one slot (paper Figure 9). It refines
// the four user-interface states of Figure 5 with the extra protocol
// state Closing, not observable in the user interface.
type State uint8

// The five protocol states.
const (
	Closed  State = iota // no channel; initial state
	Opening              // sent open, awaiting oack or close
	Opened               // received open, owes oack or close
	Flowing              // channel established; describe/select legal
	Closing              // sent close, awaiting closeack
)

var stateNames = [...]string{"closed", "opening", "opened", "flowing", "closing"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Live reports whether the state is one of the live states (opening,
// opened, flowing), as defined in paper Figure 12's caption. The dead
// states are closed and closing.
func (s State) Live() bool { return s == Opening || s == Opened || s == Flowing }

// Event classifies a received signal for consumption by the slot's
// goal object.
type Event uint8

// The events a goal object can observe.
const (
	EvNone     Event = iota
	EvOpen           // open received while closed; slot now Opened
	EvOpenRace       // open received while opening and this end loses the race; slot now Opened
	EvOack           // oack received; slot now Flowing; descriptor cached
	EvClose          // close received; slot now Closed and owes a closeack
	EvCloseAck       // closeack received; slot now Closed
	EvDescribe       // fresh remote descriptor cached; answer with a select
	EvSelect         // selector received; recorded in history
	EvStale          // signal discarded as obsolete (e.g. describe while closing)
)

var eventNames = [...]string{"none", "open", "openRace", "oack", "close", "closeack", "describe", "select", "stale"}

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// History records the most recently sent and received descriptors and
// selectors at a slot. These are the history variables used by the
// paper's model-checking definition of the bothFlowing path state
// (Section VIII-A) and, via Enabled, the Lenabled/Renabled variables of
// Section V.
type History struct {
	DescSent    sig.Descriptor // most recent descriptor sent (open/oack/describe)
	HasDescSent bool
	SelSent     sig.Selector // most recent selector sent
	HasSelSent  bool
	SelRcvd     sig.Selector // most recent selector received
	HasSelRcvd  bool
}

// Slot is one protocol endpoint.
type Slot struct {
	name      string
	initiator bool // true if this box initiated setup of the signaling channel
	state     State

	medium  sig.Medium
	desc    sig.Descriptor // most recent descriptor received (open, oack, or describe)
	hasDesc bool

	owesCloseAck bool // a received close has not yet been acknowledged
	enabled      bool // this end has sent a selector with a real codec (paper §VI-C)

	hist  History
	stale uint32 // count of discarded stale signals, for diagnostics

	m        *slotMetrics // telemetry instruments; never nil after New
	openedAt time.Time    // when the slot last left Closed (telemetry only)
}

// New creates a slot named name. initiator must be true exactly at the
// end of the tunnel whose box initiated setup of the containing
// signaling channel; it resolves open-open races (paper Section VI-B:
// "the winner of the race is always the end of the tunnel that
// initiated setup of the signaling channel").
func New(name string, initiator bool) *Slot {
	return &Slot{name: name, initiator: initiator, m: metrics()}
}

// transition moves the slot to state to, recording the transition in
// the telemetry counters, the time-to-flowing histogram, and the
// signal tracer. With telemetry disabled it is a plain assignment plus
// a nil check.
func (s *Slot) transition(to State) {
	from := s.state
	s.state = to
	m := s.m
	if m == nil || m.reg == nil {
		return
	}
	m.trans[from][to].Inc()
	if from == Closed && to != Closed {
		s.openedAt = time.Now()
	}
	if to == Flowing && from != Flowing && !s.openedAt.IsZero() {
		m.ttf.Observe(time.Since(s.openedAt))
		s.openedAt = time.Time{}
	}
	if m.tracer.Armed() {
		m.tracer.Record("slot", s.name, from.String()+"->"+to.String())
	}
}

// Name returns the slot's name within its box.
func (s *Slot) Name() string { return s.name }

// Initiator reports whether this end wins open-open races.
func (s *Slot) Initiator() bool { return s.initiator }

// State returns the current protocol state.
func (s *Slot) State() State { return s.state }

// Medium returns the medium of the slot's channel; it is defined
// whenever the slot is not closed (paper Section IV-A).
func (s *Slot) Medium() sig.Medium { return s.medium }

// Desc returns the cached most-recent remote descriptor, if any. Slots
// in the opened and flowing states are "described" (paper Section VII).
func (s *Slot) Desc() (sig.Descriptor, bool) { return s.desc, s.hasDesc }

// Described reports whether the slot holds a current remote descriptor.
func (s *Slot) Described() bool { return s.hasDesc }

// OwesCloseAck reports whether a received close still awaits its
// closeack.
func (s *Slot) OwesCloseAck() bool { return s.owesCloseAck }

// Enabled reports whether this end has most recently sent a selector
// with a real codec while flowing — the Lenabled/Renabled history
// variable of paper Sections V and VI-C.
func (s *Slot) Enabled() bool { return s.enabled }

// Hist returns the slot's signal history for specification checking.
func (s *Slot) Hist() History { return s.hist }

// StaleCount returns the number of signals discarded as stale.
func (s *Slot) StaleCount() uint32 { return s.stale }

// Predicates on the four user-interface states (paper Section IV-A).
// The protocol state Closing is not observable in the user interface
// and reads as closed, matching Figure 5.

// IsClosed reports the user-interface closed state.
func (s *Slot) IsClosed() bool { return s.state == Closed || s.state == Closing }

// IsOpening reports the user-interface opening state.
func (s *Slot) IsOpening() bool { return s.state == Opening }

// IsOpened reports the user-interface opened state.
func (s *Slot) IsOpened() bool { return s.state == Opened }

// IsFlowing reports the user-interface flowing state.
func (s *Slot) IsFlowing() bool { return s.state == Flowing }

// errf builds a protocol violation error tagged with the slot name.
func (s *Slot) errf(format string, args ...any) error {
	return fmt.Errorf("slot %s (%s): %s", s.name, s.state, fmt.Sprintf(format, args...))
}

// Send validates and applies the state effects of sending signal g on
// this slot. It must be called for every outgoing signal, before the
// signal is handed to the transport.
func (s *Slot) Send(g sig.Signal) error {
	switch g.Kind {
	case sig.KindOpen:
		if s.state != Closed {
			return s.errf("cannot send open")
		}
		if s.owesCloseAck {
			// The peer is in Closing awaiting our closeack and would
			// discard the open as stale. Goals must acknowledge first.
			return s.errf("cannot send open before acknowledging close")
		}
		if g.Medium == "" {
			return s.errf("open requires a medium")
		}
		s.transition(Opening)
		s.medium = g.Medium
		s.recordDescSent(g.Desc)
	case sig.KindOack:
		if s.state != Opened {
			return s.errf("cannot send oack")
		}
		s.transition(Flowing)
		s.recordDescSent(g.Desc)
	case sig.KindClose:
		switch s.state {
		case Opening, Opened, Flowing:
			s.transition(Closing)
			s.leaveFlowing()
			// A closing slot is no longer "described" (paper Section
			// VII: only opened and flowing slots are); drop the cache
			// so flowlinks never propagate a dying slot's descriptor.
			s.desc = sig.Descriptor{}
			s.hasDesc = false
		default:
			return s.errf("cannot send close")
		}
	case sig.KindCloseAck:
		if !s.owesCloseAck {
			return s.errf("no close to acknowledge")
		}
		s.owesCloseAck = false
	case sig.KindDescribe:
		if s.state != Flowing {
			return s.errf("cannot send describe")
		}
		s.recordDescSent(g.Desc)
	case sig.KindSelect:
		if s.state != Flowing {
			return s.errf("cannot send select")
		}
		s.hist.SelSent = g.Sel
		s.hist.HasSelSent = true
		s.enabled = !g.Sel.NoMedia()
	default:
		return s.errf("cannot send %s", g.Kind)
	}
	return nil
}

func (s *Slot) recordDescSent(d sig.Descriptor) {
	s.hist.DescSent = d
	s.hist.HasDescSent = true
}

// leaveFlowing clears state that is only meaningful while the channel
// is up. Per paper Section VI-C, the enabled history variable becomes
// false when the endpoint leaves the flowing state.
func (s *Slot) leaveFlowing() {
	s.enabled = false
}

// reset returns the slot to the closed state, forgetting channel state.
func (s *Slot) reset() {
	s.transition(Closed)
	s.medium = ""
	s.desc = sig.Descriptor{}
	s.hasDesc = false
	s.leaveFlowing()
}

// Receive applies the state effects of receiving signal g and
// classifies it as an event for the goal object. A returned error
// indicates a protocol violation by the peer; EvStale indicates a
// legally discarded obsolete signal.
func (s *Slot) Receive(g sig.Signal) (Event, error) {
	switch g.Kind {
	case sig.KindOpen:
		switch s.state {
		case Closed:
			s.transition(Opened)
			s.medium = g.Medium
			s.cacheDesc(g.Desc)
			return EvOpen, nil
		case Opening:
			// Open-open race within the tunnel (paper Section VI-B). The
			// winner is the end that initiated the signaling channel; the
			// losing open signal is simply ignored.
			if s.m != nil {
				s.m.glare.Inc()
			}
			if s.initiator {
				s.stale++
				return EvStale, nil
			}
			// This end loses: back off and become the acceptor. The
			// incoming open supersedes ours.
			s.transition(Opened)
			s.medium = g.Medium
			s.cacheDesc(g.Desc)
			return EvOpenRace, nil
		case Closing:
			// The peer reopened before seeing our close; our close will
			// reject it from the peer's perspective. Discard.
			s.stale++
			return EvStale, nil
		default:
			return EvNone, s.errf("received open")
		}
	case sig.KindOack:
		switch s.state {
		case Opening:
			s.transition(Flowing)
			s.cacheDesc(g.Desc)
			return EvOack, nil
		case Closing:
			s.stale++
			return EvStale, nil
		default:
			return EvNone, s.errf("received oack")
		}
	case sig.KindClose:
		switch s.state {
		case Opening, Opened, Flowing:
			s.reset()
			s.owesCloseAck = true
			return EvClose, nil
		case Closing:
			// Simultaneous close: both ends closed at once. Acknowledge
			// and keep waiting for our own closeack.
			s.owesCloseAck = true
			return EvClose, nil
		default:
			return EvNone, s.errf("received close")
		}
	case sig.KindCloseAck:
		if s.state != Closing {
			return EvNone, s.errf("received closeack")
		}
		s.reset()
		return EvCloseAck, nil
	case sig.KindDescribe:
		switch s.state {
		case Flowing:
			s.cacheDesc(g.Desc)
			return EvDescribe, nil
		case Closing, Closed:
			// In-flight describe overtaken by a close from this end.
			s.stale++
			return EvStale, nil
		default:
			return EvNone, s.errf("received describe")
		}
	case sig.KindSelect:
		switch s.state {
		case Flowing:
			s.hist.SelRcvd = g.Sel
			s.hist.HasSelRcvd = true
			return EvSelect, nil
		case Closing, Closed:
			s.stale++
			return EvStale, nil
		default:
			return EvNone, s.errf("received select")
		}
	default:
		return EvNone, s.errf("received unknown signal kind %d", g.Kind)
	}
}

func (s *Slot) cacheDesc(d sig.Descriptor) {
	s.desc = d
	s.hasDesc = true
}

// Clone returns a deep copy of the slot, for the model checker.
func (s *Slot) Clone() *Slot {
	c := *s
	if s.desc.Codecs != nil {
		c.desc.Codecs = append([]sig.Codec(nil), s.desc.Codecs...)
	}
	if s.hist.DescSent.Codecs != nil {
		c.hist.DescSent.Codecs = append([]sig.Codec(nil), s.hist.DescSent.Codecs...)
	}
	return &c
}

// AppendEncode appends a deterministic fingerprint of the slot's state
// to dst and returns the extended slice, for state hashing in the
// model checker.
func (s *Slot) AppendEncode(dst []byte) []byte {
	dst = append(dst, s.name...)
	dst = append(dst, byte(s.state))
	dst = append(dst, string(s.medium)...)
	dst = append(dst, boolByte(s.initiator), boolByte(s.hasDesc))
	if s.hasDesc {
		dst = sig.AppendDescriptor(dst, s.desc)
	}
	dst = append(dst, boolByte(s.owesCloseAck), boolByte(s.enabled), boolByte(s.hist.HasDescSent))
	if s.hist.HasDescSent {
		dst = sig.AppendDescriptor(dst, s.hist.DescSent)
	}
	dst = append(dst, boolByte(s.hist.HasSelSent))
	if s.hist.HasSelSent {
		dst = sig.AppendSelector(dst, s.hist.SelSent)
	}
	dst = append(dst, boolByte(s.hist.HasSelRcvd))
	if s.hist.HasSelRcvd {
		dst = sig.AppendSelector(dst, s.hist.SelRcvd)
	}
	return dst
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func (s *Slot) String() string {
	return fmt.Sprintf("slot(%s %s %s)", s.name, s.state, s.medium)
}
