// Retransmission bookkeeping for the signaling protocol: sequence
// stamping, an unacknowledged-send ring, and in-order duplicate-free
// receive reconstruction.
//
// The Figure 9/10 slot FSM — including the open-open race — is proved
// against two-way FIFO reliable channels (paper Section III-A). Over a
// network that drops, duplicates, delays, and reorders, the reliable
// transport layer restores exactly that abstraction with one
// SendTracker/RecvTracker pair per channel direction: every slot's
// open/oack/close/closeack/describe/select crosses the wire stamped
// with a channel-scope sequence number, is retransmitted until
// cumulatively acknowledged, and is delivered to the far box exactly
// once, in order. Per-slot FIFO (all the FSM needs) follows from
// channel FIFO, so the FSM itself is unchanged and the Section V path
// formulas carry over (see DESIGN.md).
//
// Both trackers are plain single-goroutine data structures with
// amortized-zero allocation in steady state: the send ring recycles
// its backing array, and in-order arrivals never touch the reorder
// buffer. Locking, timers, and acking policy belong to the transport
// layer that owns them.
package slot

import "ipmedia/internal/sig"

// MaxReorder bounds the out-of-order receive buffer. An envelope more
// than MaxReorder sequence numbers ahead of the next expected one is
// dropped; the sender's retransmission recovers it once the gap heals.
const MaxReorder = 1024

// SendTracker assigns sequence numbers to outgoing envelopes and
// retains every envelope until it is cumulatively acknowledged, for
// retransmission. The zero value is ready to use; sequences start at 1
// (sig.Envelope treats 0 as unsequenced).
type SendTracker struct {
	next uint32 // seq assigned to the next Stamp (0 means "not started")

	// Unacked ring: buf[head..head+n) in ring order holds the envelopes
	// with sequence base..base+n-1.
	buf     []sig.Envelope
	head, n int
	base    uint32
}

// Stamp assigns the next sequence number to e, retains a copy for
// retransmission, and returns the stamped envelope.
func (t *SendTracker) Stamp(e sig.Envelope) sig.Envelope {
	if t.next == 0 {
		t.next = 1
		t.base = 1
	}
	e.Seq = t.next
	t.next++
	t.push(e)
	return e
}

func (t *SendTracker) push(e sig.Envelope) {
	if t.n == len(t.buf) {
		grown := make([]sig.Envelope, max(16, 2*len(t.buf)))
		for i := 0; i < t.n; i++ {
			grown[i] = t.buf[(t.head+i)%len(t.buf)]
		}
		t.buf, t.head = grown, 0
	}
	t.buf[(t.head+t.n)%len(t.buf)] = e
	t.n++
}

// Ack releases every retained envelope with sequence <= cum and
// returns the number released. Stale (smaller) cumulative acks are
// no-ops.
func (t *SendTracker) Ack(cum uint32) int {
	released := 0
	for t.n > 0 && t.base <= cum {
		t.buf[t.head] = sig.Envelope{} // drop payload references
		t.head = (t.head + 1) % len(t.buf)
		t.n--
		t.base++
		released++
	}
	return released
}

// Unacked calls f on every retained envelope in sequence order,
// stopping early if f returns false. The transport's retransmission
// timer drives it.
func (t *SendTracker) Unacked(f func(sig.Envelope) bool) {
	for i := 0; i < t.n; i++ {
		if !f(t.buf[(t.head+i)%len(t.buf)]) {
			return
		}
	}
}

// Len reports the number of unacknowledged envelopes.
func (t *SendTracker) Len() int { return t.n }

// NextSeq reports the sequence number the next Stamp will assign.
func (t *SendTracker) NextSeq() uint32 {
	if t.next == 0 {
		return 1
	}
	return t.next
}

// RecvTracker reconstructs the in-order duplicate-free envelope stream
// from an at-least-once, possibly reordered arrival stream. The zero
// value is ready to use.
type RecvTracker struct {
	cum     uint32         // highest sequence delivered contiguously
	pending []sig.Envelope // arrived out of order, ascending by Seq
}

// Accept processes one arrived envelope. Envelopes that extend the
// contiguous stream (including any buffered successors they unblock)
// are passed to deliver, in order; duplicates are reported and
// discarded; out-of-order arrivals within MaxReorder are buffered.
// Unsequenced envelopes (Seq 0) bypass tracking and are delivered
// immediately.
func (t *RecvTracker) Accept(e sig.Envelope, deliver func(sig.Envelope)) (dup bool) {
	if e.Seq == 0 {
		deliver(e)
		return false
	}
	switch {
	case e.Seq <= t.cum:
		return true
	case e.Seq == t.cum+1:
		t.cum++
		deliver(e)
		// Drain buffered successors that are now contiguous.
		for len(t.pending) > 0 && t.pending[0].Seq == t.cum+1 {
			t.cum++
			deliver(t.pending[0])
			copy(t.pending, t.pending[1:])
			t.pending[len(t.pending)-1] = sig.Envelope{}
			t.pending = t.pending[:len(t.pending)-1]
		}
		return false
	case e.Seq > t.cum+MaxReorder:
		// Too far ahead to buffer; retransmission will re-deliver it
		// once the gap heals. Not a duplicate, but not kept either.
		return false
	}
	// Out of order: insert into pending, ascending, unless present.
	lo := 0
	for lo < len(t.pending) && t.pending[lo].Seq < e.Seq {
		lo++
	}
	if lo < len(t.pending) && t.pending[lo].Seq == e.Seq {
		return true
	}
	t.pending = append(t.pending, sig.Envelope{})
	copy(t.pending[lo+1:], t.pending[lo:])
	t.pending[lo] = e
	return false
}

// CumAck reports the highest contiguously delivered sequence number —
// the cumulative acknowledgment to send to the peer.
func (t *RecvTracker) CumAck() uint32 { return t.cum }

// PendingLen reports the number of envelopes buffered out of order.
func (t *RecvTracker) PendingLen() int { return len(t.pending) }
