package slot

import (
	"testing"

	"ipmedia/internal/sig"
)

// FuzzSlotFSM drives a slot with an arbitrary byte-directed sequence
// of sends and receives and checks the FSM's internal consistency: no
// panics, the user-interface predicates always partition the states,
// and a described slot is always in opened or flowing.
func FuzzSlotFSM(f *testing.F) {
	f.Add([]byte{0, 10, 14, 5})      // open, recv oack, select, close
	f.Add([]byte{8, 1, 5, 12})       // recv open, oack, close, recv closeack
	f.Add([]byte{0, 8, 5, 11, 3, 3}) // race-ish garbage
	f.Fuzz(func(t *testing.T, script []byte) {
		s := New("f", len(script)%2 == 0)
		d := func(o string, q uint32) sig.Descriptor {
			return sig.Descriptor{ID: sig.DescID{Origin: o, Seq: q}, Addr: "h", Port: 1, Codecs: []sig.Codec{sig.G711}}
		}
		sel := func(q uint32, real bool) sig.Selector {
			c := sig.NoMedia
			if real {
				c = sig.G711
			}
			return sig.Selector{Answers: sig.DescID{Origin: "p", Seq: q}, Addr: "h2", Port: 2, Codec: c}
		}
		for i, op := range script {
			q := uint32(i%3) + 1
			switch op % 16 {
			case 0:
				s.Send(sig.Open(sig.Audio, d("m", q)))
			case 1:
				s.Send(sig.Oack(d("m", q)))
			case 2:
				s.Send(sig.Describe(d("m", q)))
			case 3:
				s.Send(sig.Select(sel(q, true)))
			case 4:
				s.Send(sig.Select(sel(q, false)))
			case 5:
				s.Send(sig.Close())
			case 6:
				s.Send(sig.CloseAck())
			case 7:
				s.Send(sig.Open("", d("m", q))) // always illegal
			case 8:
				s.Receive(sig.Open(sig.Audio, d("p", q)))
			case 9:
				s.Receive(sig.Open("", d("p", q)))
			case 10:
				s.Receive(sig.Oack(d("p", q)))
			case 11:
				s.Receive(sig.Describe(d("p", q)))
			case 12:
				s.Receive(sig.CloseAck())
			case 13:
				s.Receive(sig.Close())
			case 14:
				s.Receive(sig.Select(sel(q, true)))
			case 15:
				s.Receive(sig.Signal{Kind: sig.Kind(42)})
			}
			// Internal consistency after every step:
			ui := 0
			for _, p := range []bool{s.IsClosed(), s.IsOpening(), s.IsOpened(), s.IsFlowing()} {
				if p {
					ui++
				}
			}
			if ui != 1 {
				t.Fatalf("UI predicates not a partition in %s", s.State())
			}
			if s.Described() && s.State() != Opened && s.State() != Flowing {
				t.Fatalf("described in %s: only opened and flowing slots are described", s.State())
			}
			if s.Enabled() && s.State() != Flowing {
				t.Fatalf("enabled outside flowing (%s)", s.State())
			}
		}
	})
}
