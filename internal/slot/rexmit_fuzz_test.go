package slot

import (
	"testing"

	"ipmedia/internal/sig"
)

// FuzzSlotRetransmit drives a SendTracker/RecvTracker pair through a
// byte-directed adversarial network — drops, duplicates, reorders, and
// retransmission rounds — and checks the reliability invariant: the
// receiver delivers exactly the stamped stream, in order, without
// duplicates or gaps, no matter what the script does.
func FuzzSlotRetransmit(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 0})          // send, dup, drop-ish, retransmit
	f.Add([]byte{0, 4, 0, 0, 2, 1, 3})       // reorder window play
	f.Add([]byte{0, 1, 0, 1, 3, 3, 2, 4, 5}) // replay + acks
	f.Fuzz(func(t *testing.T, script []byte) {
		var st SendTracker
		var rt RecvTracker

		// The "wire": envelopes sent but not yet arrived, which the
		// script can deliver in order, deliver from the back (reorder),
		// duplicate, or drop.
		var wire []sig.Envelope
		delivered := uint32(0)
		deliver := func(e sig.Envelope) {
			// Invariant: delivery is the exact stream 1, 2, 3, ... — in
			// order, duplicate-free, gap-free.
			if e.Seq != delivered+1 {
				t.Fatalf("delivered seq %d after %d deliveries", e.Seq, delivered)
			}
			delivered++
		}
		arrive := func(e sig.Envelope) { rt.Accept(e, deliver) }

		sent := uint32(0)
		for _, op := range script {
			switch op % 6 {
			case 0: // send a fresh envelope onto the wire
				e := st.Stamp(sig.Envelope{Tunnel: int(op), Sig: sig.Close()})
				sent = e.Seq
				wire = append(wire, e)
			case 1: // deliver the oldest wire envelope
				if len(wire) > 0 {
					arrive(wire[0])
					wire = wire[1:]
				}
			case 2: // deliver the newest wire envelope (reorder)
				if len(wire) > 0 {
					arrive(wire[len(wire)-1])
					wire = wire[:len(wire)-1]
				}
			case 3: // duplicate-deliver the oldest without consuming it
				if len(wire) > 0 {
					arrive(wire[0])
				}
			case 4: // drop the oldest wire envelope
				if len(wire) > 0 {
					wire = wire[1:]
				}
			case 5: // ack what the receiver has, then retransmit the rest
				st.Ack(rt.CumAck())
				st.Unacked(func(e sig.Envelope) bool {
					wire = append(wire, e)
					return true
				})
			}
			if rt.CumAck() != delivered {
				t.Fatalf("cum ack %d does not match %d deliveries", rt.CumAck(), delivered)
			}
		}
		// Final retransmission rounds must converge: everything ever
		// stamped is eventually delivered.
		for round := 0; round < int(sent)+1; round++ {
			st.Ack(rt.CumAck())
			done := true
			st.Unacked(func(e sig.Envelope) bool {
				done = false
				arrive(e)
				return true
			})
			if done {
				break
			}
		}
		if delivered != sent {
			t.Fatalf("retransmission did not converge: delivered %d of %d", delivered, sent)
		}
	})
}
