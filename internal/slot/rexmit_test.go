package slot

import (
	"testing"

	"ipmedia/internal/sig"
)

func seqEnv(t int) sig.Envelope {
	return sig.Envelope{Tunnel: t, Sig: sig.Close()}
}

// TestSendTrackerStampAck: sequences start at 1, cumulative acks
// release prefixes, stale acks are no-ops, and Unacked iterates in
// order.
func TestSendTrackerStampAck(t *testing.T) {
	var st SendTracker
	for i := 0; i < 100; i++ {
		e := st.Stamp(seqEnv(i))
		if e.Seq != uint32(i+1) {
			t.Fatalf("stamp %d: seq %d", i, e.Seq)
		}
	}
	if st.Len() != 100 {
		t.Fatalf("Len = %d, want 100", st.Len())
	}
	if n := st.Ack(40); n != 40 {
		t.Fatalf("Ack(40) released %d", n)
	}
	if n := st.Ack(40); n != 0 {
		t.Fatalf("stale Ack released %d", n)
	}
	want := uint32(41)
	st.Unacked(func(e sig.Envelope) bool {
		if e.Seq != want {
			t.Fatalf("Unacked out of order: seq %d, want %d", e.Seq, want)
		}
		want++
		return true
	})
	if want != 101 {
		t.Fatalf("Unacked stopped at %d", want)
	}
	st.Ack(100)
	if st.Len() != 0 {
		t.Fatalf("Len after full ack = %d", st.Len())
	}
	if st.NextSeq() != 101 {
		t.Fatalf("NextSeq = %d, want 101", st.NextSeq())
	}
}

// TestRecvTrackerOrderDupGap: duplicates are suppressed, out-of-order
// arrivals are buffered and drained contiguously, far-future arrivals
// are discarded without poisoning the stream.
func TestRecvTrackerOrderDupGap(t *testing.T) {
	var rt RecvTracker
	var got []uint32
	deliver := func(e sig.Envelope) { got = append(got, e.Seq) }
	env := func(seq uint32) sig.Envelope {
		e := seqEnv(0)
		e.Seq = seq
		return e
	}

	if dup := rt.Accept(env(1), deliver); dup {
		t.Fatal("first envelope reported dup")
	}
	if dup := rt.Accept(env(1), deliver); !dup {
		t.Fatal("replay not reported dup")
	}
	// 3 and 4 arrive before 2.
	rt.Accept(env(3), deliver)
	rt.Accept(env(4), deliver)
	if len(got) != 1 {
		t.Fatalf("out-of-order envelopes delivered early: %v", got)
	}
	if dup := rt.Accept(env(3), deliver); !dup {
		t.Fatal("pending replay not reported dup")
	}
	rt.Accept(env(2), deliver)
	if len(got) != 4 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("contiguous drain wrong: %v", got)
	}
	if rt.CumAck() != 4 || rt.PendingLen() != 0 {
		t.Fatalf("cum=%d pending=%d", rt.CumAck(), rt.PendingLen())
	}
	// Far beyond the reorder window: dropped, not buffered, not dup.
	if dup := rt.Accept(env(4+MaxReorder+1), deliver); dup {
		t.Fatal("far-future envelope reported dup")
	}
	if rt.PendingLen() != 0 {
		t.Fatal("far-future envelope buffered")
	}
	// Unsequenced envelopes bypass tracking entirely.
	rt.Accept(seqEnv(9), deliver)
	if len(got) != 5 || got[4] != 0 {
		t.Fatalf("unsequenced envelope not passed through: %v", got)
	}
}

// TestSendTrackerZeroAllocSteadyState: once the ring is warm, a
// stamp/ack cycle allocates nothing — the claim behind the reliable
// layer's zero-alloc send path.
func TestSendTrackerZeroAllocSteadyState(t *testing.T) {
	var st SendTracker
	var rt RecvTracker
	e := seqEnv(0)
	for i := 0; i < 64; i++ { // warm the ring
		st.Stamp(e)
	}
	st.Ack(64)
	deliver := func(sig.Envelope) {}
	avg := testing.AllocsPerRun(10000, func() {
		s := st.Stamp(e)
		if rt.Accept(s, deliver) {
			t.Fatal("in-order envelope reported dup")
		}
		st.Ack(rt.CumAck())
	})
	if avg != 0 {
		t.Fatalf("steady-state stamp/accept/ack allocates %.2f allocs/op, want 0", avg)
	}
}
