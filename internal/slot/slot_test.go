package slot

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ipmedia/internal/sig"
)

func desc(origin string, seq uint32) sig.Descriptor {
	return sig.Descriptor{ID: sig.DescID{Origin: origin, Seq: seq}, Addr: "10.0.0.1", Port: 5004, Codecs: []sig.Codec{sig.G711}}
}

func mustSend(t *testing.T, s *Slot, g sig.Signal) {
	t.Helper()
	if err := s.Send(g); err != nil {
		t.Fatalf("send %s: %v", g, err)
	}
}

func mustRecv(t *testing.T, s *Slot, g sig.Signal, want Event) {
	t.Helper()
	ev, err := s.Receive(g)
	if err != nil {
		t.Fatalf("receive %s: %v", g, err)
	}
	if ev != want {
		t.Fatalf("receive %s: event %s, want %s", g, ev, want)
	}
}

func TestOpenAcceptLifecycle(t *testing.T) {
	// The happy path of Figure 10: open, oack, selects, close, closeack,
	// seen from the opener's side.
	s := New("1a", true)
	if s.State() != Closed || !s.IsClosed() {
		t.Fatal("new slot must be closed")
	}
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1)))
	if s.State() != Opening || !s.IsOpening() {
		t.Fatal("open must move to opening")
	}
	if s.Medium() != sig.Audio {
		t.Fatal("medium must be recorded on open")
	}
	mustRecv(t, s, sig.Oack(desc("R", 1)), EvOack)
	if s.State() != Flowing || !s.IsFlowing() {
		t.Fatal("oack must move to flowing")
	}
	d, ok := s.Desc()
	if !ok || d.ID.Origin != "R" {
		t.Fatal("oack descriptor must be cached")
	}
	mustSend(t, s, sig.Select(sig.Selector{Answers: d.ID, Addr: "a", Port: 1, Codec: sig.G711}))
	if !s.Enabled() {
		t.Fatal("sending a real selector must set enabled")
	}
	mustSend(t, s, sig.Close())
	if s.State() != Closing || !s.IsClosed() {
		t.Fatal("close must move to closing, which reads as closed in the UI")
	}
	if s.Enabled() {
		t.Fatal("leaving flowing must clear enabled")
	}
	mustRecv(t, s, sig.CloseAck(), EvCloseAck)
	if s.State() != Closed {
		t.Fatal("closeack must move to closed")
	}
	if s.Medium() != "" || s.Described() {
		t.Fatal("closing must forget medium and descriptor")
	}
}

func TestAcceptorLifecycle(t *testing.T) {
	s := New("2a", false)
	mustRecv(t, s, sig.Open(sig.Audio, desc("L", 1)), EvOpen)
	if s.State() != Opened || !s.IsOpened() {
		t.Fatal("received open must move to opened")
	}
	if !s.Described() {
		t.Fatal("open descriptor must be cached")
	}
	mustSend(t, s, sig.Oack(desc("R", 1)))
	if s.State() != Flowing {
		t.Fatal("sent oack must move to flowing")
	}
	mustSend(t, s, sig.Select(sig.Selector{Answers: sig.DescID{Origin: "L", Seq: 1}, Codec: sig.NoMedia}))
	if s.Enabled() {
		t.Fatal("noMedia selector must not set enabled")
	}
}

func TestRejectByClose(t *testing.T) {
	// close plays the role of reject (paper Section VI-B).
	s := New("x", true)
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1)))
	mustRecv(t, s, sig.Close(), EvClose)
	if s.State() != Closed || !s.OwesCloseAck() {
		t.Fatal("rejected opener must be closed and owe a closeack")
	}
	if err := s.Send(sig.Open(sig.Audio, desc("L", 1))); err == nil {
		t.Fatal("open before closeack must be rejected")
	}
	mustSend(t, s, sig.CloseAck())
	if s.OwesCloseAck() {
		t.Fatal("closeack must clear the debt")
	}
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1))) // retry is now legal
}

func TestRejectIncomingOpen(t *testing.T) {
	s := New("x", false)
	mustRecv(t, s, sig.Open(sig.Audio, desc("L", 1)), EvOpen)
	mustSend(t, s, sig.Close()) // reject
	if s.State() != Closing {
		t.Fatal("rejecting must move to closing")
	}
	mustRecv(t, s, sig.CloseAck(), EvCloseAck)
	if s.State() != Closed {
		t.Fatal("closeack must complete the rejection")
	}
}

func TestOpenOpenRaceWinner(t *testing.T) {
	// The channel initiator wins the race; the losing open is ignored.
	s := New("w", true)
	mustSend(t, s, sig.Open(sig.Audio, desc("W", 1)))
	mustRecv(t, s, sig.Open(sig.Audio, desc("L", 1)), EvStale)
	if s.State() != Opening {
		t.Fatal("winner must keep waiting for oack")
	}
	if s.Described() {
		t.Fatal("winner must not cache the losing open's descriptor")
	}
	mustRecv(t, s, sig.Oack(desc("L", 2)), EvOack)
	if s.State() != Flowing {
		t.Fatal("winner completes normally")
	}
}

func TestOpenOpenRaceLoser(t *testing.T) {
	s := New("l", false)
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1)))
	mustRecv(t, s, sig.Open(sig.Audio, desc("W", 1)), EvOpenRace)
	if s.State() != Opened {
		t.Fatal("loser must back off and become the acceptor")
	}
	d, _ := s.Desc()
	if d.ID.Origin != "W" {
		t.Fatal("loser must cache the winner's descriptor")
	}
	mustSend(t, s, sig.Oack(desc("L", 2)))
	if s.State() != Flowing {
		t.Fatal("loser completes as acceptor")
	}
}

func TestSimultaneousClose(t *testing.T) {
	// Both ends close at once; each receives a close while closing,
	// acknowledges it, and completes on its own closeack.
	s := New("x", true)
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1)))
	mustRecv(t, s, sig.Oack(desc("R", 1)), EvOack)
	mustSend(t, s, sig.Close())
	mustRecv(t, s, sig.Close(), EvClose)
	if s.State() != Closing || !s.OwesCloseAck() {
		t.Fatal("simultaneous close: still closing, owes ack")
	}
	mustSend(t, s, sig.CloseAck())
	mustRecv(t, s, sig.CloseAck(), EvCloseAck)
	if s.State() != Closed {
		t.Fatal("simultaneous close must converge to closed")
	}
}

func TestStaleSignalsWhileClosing(t *testing.T) {
	s := New("x", true)
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1)))
	mustRecv(t, s, sig.Oack(desc("R", 1)), EvOack)
	mustSend(t, s, sig.Close())
	mustRecv(t, s, sig.Describe(desc("R", 2)), EvStale)
	mustRecv(t, s, sig.Select(sig.Selector{Answers: sig.DescID{Origin: "L", Seq: 1}, Codec: sig.G711}), EvStale)
	mustRecv(t, s, sig.Open(sig.Audio, desc("R", 3)), EvStale)
	if s.StaleCount() != 3 {
		t.Fatalf("stale count = %d, want 3", s.StaleCount())
	}
	mustRecv(t, s, sig.CloseAck(), EvCloseAck)
}

func TestDescribeSelectWhileFlowing(t *testing.T) {
	s := New("x", true)
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1)))
	mustRecv(t, s, sig.Oack(desc("R", 1)), EvOack)

	mustRecv(t, s, sig.Describe(desc("R", 2)), EvDescribe)
	d, _ := s.Desc()
	if d.ID.Seq != 2 {
		t.Fatal("describe must refresh the cached descriptor")
	}
	mustSend(t, s, sig.Describe(desc("L", 2)))
	if s.Hist().DescSent.ID.Seq != 2 {
		t.Fatal("sent describe must be recorded in history")
	}
	sel := sig.Selector{Answers: d.ID, Addr: "a", Port: 1, Codec: sig.G711}
	mustRecv(t, s, sig.Select(sel), EvSelect)
	if !s.Hist().HasSelRcvd || s.Hist().SelRcvd.Answers != d.ID {
		t.Fatal("received select must be recorded in history")
	}
}

func TestEnabledFollowsSelectors(t *testing.T) {
	// Paper Section VI-C: enabled becomes true on sending a real
	// selector, false on sending a noMedia selector or leaving flowing.
	s := New("x", true)
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1)))
	mustRecv(t, s, sig.Oack(desc("R", 1)), EvOack)
	id := sig.DescID{Origin: "R", Seq: 1}
	mustSend(t, s, sig.Select(sig.Selector{Answers: id, Codec: sig.G711}))
	if !s.Enabled() {
		t.Fatal("real selector must enable")
	}
	mustSend(t, s, sig.Select(sig.Selector{Answers: id, Codec: sig.NoMedia}))
	if s.Enabled() {
		t.Fatal("noMedia selector must disable")
	}
	mustSend(t, s, sig.Select(sig.Selector{Answers: id, Codec: sig.G711}))
	mustRecv(t, s, sig.Close(), EvClose)
	if s.Enabled() {
		t.Fatal("leaving flowing must disable")
	}
}

func TestIllegalSendsRejected(t *testing.T) {
	s := New("x", true)
	illegal := []sig.Signal{
		sig.Oack(desc("L", 1)), // not opened
		sig.Close(),            // nothing to close
		sig.CloseAck(),         // nothing to acknowledge
		sig.Describe(desc("L", 1)),
		sig.Select(sig.Selector{}),
		sig.Open("", desc("L", 1)), // missing medium
	}
	for _, g := range illegal {
		if err := s.Send(g); err == nil {
			t.Errorf("send %s from closed should fail", g)
		}
	}
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1)))
	if err := s.Send(sig.Open(sig.Audio, desc("L", 1))); err == nil {
		t.Error("double open should fail")
	}
}

func TestIllegalReceivesRejected(t *testing.T) {
	s := New("x", true)
	for _, g := range []sig.Signal{sig.Oack(desc("R", 1)), sig.CloseAck(), sig.Close()} {
		if _, err := s.Receive(g); err == nil {
			t.Errorf("receive %s in closed should be a protocol violation", g)
		}
	}
	mustRecv(t, s, sig.Open(sig.Audio, desc("R", 1)), EvOpen)
	if _, err := s.Receive(sig.Open(sig.Audio, desc("R", 2))); err == nil {
		t.Error("receive open while opened should be a protocol violation")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New("x", true)
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1)))
	c := s.Clone()
	mustRecv(t, s, sig.Oack(desc("R", 1)), EvOack)
	if c.State() != Opening {
		t.Fatal("clone must not observe later mutations")
	}
	mustRecv(t, c, sig.Close(), EvClose)
	if s.State() != Flowing {
		t.Fatal("original must not observe clone mutations")
	}
}

func TestEncodeDistinguishesStates(t *testing.T) {
	s1 := New("x", true)
	s2 := New("x", true)
	mustSend(t, s2, sig.Open(sig.Audio, desc("L", 1)))
	b1 := s1.AppendEncode(nil)
	b2 := s2.AppendEncode(nil)
	if bytes.Equal(b1, b2) {
		t.Fatal("different slot states must have different fingerprints")
	}
	b3 := s2.Clone().AppendEncode(nil)
	if !bytes.Equal(b2, b3) {
		t.Fatal("clone must fingerprint identically")
	}
}

// TestQuickPairedSlotsConverge drives two slots joined by an in-memory
// FIFO pair with random goal-like behavior and asserts global
// invariants: the slots never desynchronize beyond what in-flight
// signals explain, and when the wires drain with both slots quiet, the
// pair is in a consistent joint state.
func TestQuickPairedSlotsConverge(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l, rr := New("L", true), New("R", false)
		var toR, toL []sig.Signal // in-flight FIFOs

		seq := map[string]uint32{"L": 1, "R": 1}
		mkDesc := func(o string) sig.Descriptor { return desc(o, seq[o]) }

		// Random legal actions for a slot: try each candidate signal and
		// send the first one Send() accepts.
		act := func(s *Slot, origin string, out *[]sig.Signal) {
			candidates := []sig.Signal{}
			switch r.Intn(6) {
			case 0:
				candidates = append(candidates, sig.Open(sig.Audio, mkDesc(origin)))
			case 1:
				candidates = append(candidates, sig.Oack(mkDesc(origin)))
			case 2:
				candidates = append(candidates, sig.Close())
			case 3:
				candidates = append(candidates, sig.CloseAck())
			case 4:
				seq[origin]++
				candidates = append(candidates, sig.Describe(mkDesc(origin)))
			case 5:
				if d, ok := s.Desc(); ok {
					candidates = append(candidates, sig.Select(sig.AnswerDescriptor(d, "a", 1, []sig.Codec{sig.G711}, r.Intn(2) == 0)))
				}
			}
			for _, g := range candidates {
				if err := s.Send(g); err == nil {
					*out = append(*out, g)
					return
				}
			}
		}
		deliver := func(s *Slot, in *[]sig.Signal) bool {
			if len(*in) == 0 {
				return true
			}
			g := (*in)[0]
			*in = (*in)[1:]
			_, err := s.Receive(g)
			return err == nil
		}

		for i := 0; i < 200; i++ {
			switch r.Intn(4) {
			case 0:
				act(l, "L", &toR)
			case 1:
				act(rr, "R", &toL)
			case 2:
				if !deliver(rr, &toR) {
					return false
				}
			case 3:
				if !deliver(l, &toL) {
					return false
				}
			}
		}
		// Drain: deliver everything, acknowledging closes as required.
		for len(toR) > 0 || len(toL) > 0 || l.OwesCloseAck() || rr.OwesCloseAck() {
			if l.OwesCloseAck() {
				if err := l.Send(sig.CloseAck()); err != nil {
					return false
				}
				toR = append(toR, sig.CloseAck())
			}
			if rr.OwesCloseAck() {
				if err := rr.Send(sig.CloseAck()); err != nil {
					return false
				}
				toL = append(toL, sig.CloseAck())
			}
			if len(toR) > 0 && !deliver(rr, &toR) {
				return false
			}
			if len(toL) > 0 && !deliver(l, &toL) {
				return false
			}
		}
		// Invariant: with wires empty, closing states can only persist if
		// the peer still owes an ack — but we drained all acks, so no
		// slot may remain in Closing... unless its close is still
		// unanswered because the peer never received it. Drained, so:
		for _, s := range []*Slot{l, rr} {
			if s.State() == Closing {
				return false
			}
		}
		// Joint consistency: flowing on one side implies the other side
		// is flowing or has a close in... wires are empty, so flowing
		// must be mutual.
		if (l.State() == Flowing) != (rr.State() == Flowing) {
			// One side flowing alone with empty wires is only possible if
			// the other already closed and the close is in flight — but
			// wires are empty.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReSelectNewCodecMidFlow(t *testing.T) {
	// Figure 10's sel'2: "At any time after sending the first selector
	// in response to a descriptor, an endpoint can choose a new codec
	// from the list in the descriptor, send it as a selector... and
	// begin to send media in the new codec" — no new describe needed.
	s := New("x", true)
	d := sig.Descriptor{ID: sig.DescID{Origin: "R", Seq: 1}, Addr: "r", Port: 2,
		Codecs: []sig.Codec{sig.G711, sig.G726}}
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1)))
	mustRecv(t, s, sig.Oack(d), EvOack)
	mustSend(t, s, sig.Select(sig.Selector{Answers: d.ID, Addr: "l", Port: 1, Codec: sig.G711}))
	if !s.Enabled() || s.Hist().SelSent.Codec != sig.G711 {
		t.Fatal("first selector not recorded")
	}
	// Switch to the lower-bandwidth codec without any describe.
	mustSend(t, s, sig.Select(sig.Selector{Answers: d.ID, Addr: "l", Port: 1, Codec: sig.G726}))
	if !s.Enabled() || s.Hist().SelSent.Codec != sig.G726 {
		t.Fatal("codec change via re-select not recorded")
	}
}

func TestDescribeSelectUnpaired(t *testing.T) {
	// Section VI-C: "A describe can be sent at any time, even if no
	// select has been received in response to the last describe. A
	// select can be sent at any time, even if no describe has been
	// received since the last select was sent."
	s := New("x", true)
	d := sig.Descriptor{ID: sig.DescID{Origin: "R", Seq: 1}, Addr: "r", Port: 2, Codecs: []sig.Codec{sig.G711}}
	mustSend(t, s, sig.Open(sig.Audio, desc("L", 1)))
	mustRecv(t, s, sig.Oack(d), EvOack)
	// Two describes back to back, no select in between.
	mustSend(t, s, sig.Describe(desc("L", 2)))
	mustSend(t, s, sig.Describe(desc("L", 3)))
	// Two selects back to back, no describe in between.
	mustSend(t, s, sig.Select(sig.Selector{Answers: d.ID, Codec: sig.G711}))
	mustSend(t, s, sig.Select(sig.Selector{Answers: d.ID, Codec: sig.NoMedia}))
	// And concurrent describes in opposite directions don't constrain
	// each other: a remote describe is fine now too.
	mustRecv(t, s, sig.Describe(sig.Descriptor{ID: sig.DescID{Origin: "R", Seq: 2}, Addr: "r", Port: 2, Codecs: []sig.Codec{sig.G726}}), EvDescribe)
}
