// Text exposition: an expvar-style HTTP endpoint rendering a registry
// snapshot as sorted plain-text lines, one instrument per line, so
// `curl` and shell tooling can scrape it without a client library.
//
//	counter transport.frames_out 1284
//	gauge   transport.queue_depth 0 hwm=17
//	hist    slot.time_to_flowing count=4 avg=1.1ms p50=1ms p95=2.1ms p99=2.1ms
//
// Appending ?trace=1 dumps the signal tracer's ring buffer after the
// instruments.
package telemetry

import (
	"fmt"
	"io"
	"net/http"
)

// WriteTo renders the snapshot in the text exposition format.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, k := range sortedKeys(s.Counters) {
		if err := emit("counter %s %d\n", k, s.Counters[k]); err != nil {
			return total, err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		g := s.Gauges[k]
		if err := emit("gauge %s %d hwm=%d\n", k, g.Value, g.HighWater); err != nil {
			return total, err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if err := emit("hist %s count=%d avg=%v p50=%v p95=%v p99=%v\n",
			k, h.Count, h.Avg, h.P50, h.P95, h.P99); err != nil {
			return total, err
		}
	}
	return total, nil
}

// ServeHTTP implements http.Handler: it renders a fresh snapshot of
// the registry in the text exposition format.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// Someone is watching: arm the signal tracer so hot paths start
	// feeding it. The first scrape returns an empty trace; subsequent
	// ones show events recorded since.
	r.Tracer().Arm(true)
	s := r.Snapshot()
	if _, err := s.WriteTo(w); err != nil {
		return
	}
	if req.URL.Query().Get("trace") != "" {
		fmt.Fprintf(w, "\ntrace (%d events, %d recorded):\n", len(s.Trace), r.Tracer().Recorded())
		for _, e := range s.Trace {
			fmt.Fprintf(w, "%s\n", e)
		}
	}
}
