package telemetry

import (
	"net/http/httptest"
	"testing"
)

func get(t *testing.T, h *Health, r *Registry, path string) int {
	t.Helper()
	rec := httptest.NewRecorder()
	Handler(r, h).ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code
}

func TestHealthEndpoints(t *testing.T) {
	h := &Health{}
	r := NewRegistry()
	r.Counter("x").Inc()

	if code := get(t, h, r, "/healthz"); code != 200 {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if code := get(t, h, r, "/readyz"); code != 503 {
		t.Fatalf("/readyz before SetReady = %d, want 503", code)
	}
	h.SetReady(true)
	if code := get(t, h, r, "/readyz"); code != 200 {
		t.Fatalf("/readyz after SetReady = %d, want 200", code)
	}
	h.SetReady(false)
	if code := get(t, h, r, "/readyz"); code != 503 {
		t.Fatalf("/readyz after SetReady(false) = %d, want 503", code)
	}

	rec := httptest.NewRecorder()
	Handler(r, h).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 || rec.Body.Len() == 0 {
		t.Fatalf("exposition at / = %d (%d bytes)", rec.Code, rec.Body.Len())
	}
}

// Liveness must not depend on telemetry being enabled: a nil registry
// and nil health still answer, readiness defaulting to not-ready.
func TestHealthNilSafe(t *testing.T) {
	if code := get(t, nil, nil, "/healthz"); code != 200 {
		t.Fatalf("nil /healthz = %d, want 200", code)
	}
	if code := get(t, nil, nil, "/readyz"); code != 503 {
		t.Fatalf("nil /readyz = %d, want 503", code)
	}
	if code := get(t, nil, nil, "/"); code != 200 {
		t.Fatalf("nil exposition = %d, want 200", code)
	}
	var h *Health
	h.SetReady(true) // must not panic
	if h.Ready() {
		t.Fatalf("nil Health reports ready")
	}
}
