// Liveness and readiness endpoints beside the exposition. A shard
// process under cluster supervision serves these so the supervisor can
// distinguish "dead" from "slow": /healthz answers 200 whenever the
// HTTP loop is alive (the supervisor's last check before a kill), and
// /readyz answers 200 only after the shard flips itself ready — load
// balancers and storm drivers can hold traffic until then.
package telemetry

import (
	"net/http"
	"sync/atomic"
)

// Health is a process's readiness latch.
type Health struct {
	ready atomic.Bool
}

// SetReady flips the /readyz answer.
func (h *Health) SetReady(ok bool) {
	if h != nil {
		h.ready.Store(ok)
	}
}

// Ready reports the current readiness (false on nil).
func (h *Health) Ready() bool { return h != nil && h.ready.Load() }

// Handler serves the registry exposition at / alongside /healthz and
// /readyz. Both r and h may be nil: a nil registry renders an empty
// exposition but the health endpoints still answer — liveness must not
// depend on telemetry being enabled.
func Handler(r *Registry, h *Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if h.Ready() {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ready\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("not ready\n"))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			return
		}
		r.ServeHTTP(w, req)
	})
	return mux
}
