// Package telemetry is the observability subsystem of the signaling
// stack: lock-free counters and gauges, fixed-bucket latency
// histograms, a bounded signal tracer, and a registry with a text
// exposition endpoint.
//
// The package is dependency-free (standard library only) and built
// around a nil-safe disabled path: every instrument is a pointer whose
// methods are no-ops on a nil receiver, and every lookup against a nil
// registry returns a nil instrument. Instrumented code therefore never
// branches on a "telemetry enabled" flag — it simply calls through a
// possibly-nil pointer, which costs about a nanosecond and zero
// allocations when telemetry is off. Enable telemetry (Enable or
// SetDefault) before constructing the stack: instruments are resolved
// when the instrumented objects are created.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (e.g. a queue depth) that also
// tracks its high-water mark. All methods are safe for concurrent use
// and are no-ops on a nil receiver.
type Gauge struct {
	v   atomic.Int64
	hwm atomic.Int64
}

// Add moves the gauge by delta (negative to decrease) and updates the
// high-water mark.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	v := g.v.Add(delta)
	for {
		h := g.hwm.Load()
		if v <= h || g.hwm.CompareAndSwap(h, v) {
			return
		}
	}
}

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Set forces the gauge to v and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		h := g.hwm.Load()
		if v <= h || g.hwm.CompareAndSwap(h, v) {
			return
		}
	}
}

// Value returns the current level; zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HighWater returns the largest level ever observed; zero on a nil
// receiver.
func (g *Gauge) HighWater() int64 {
	if g == nil {
		return 0
	}
	return g.hwm.Load()
}

// Histogram bucket layout: a base-2 octave ladder from 1µs to ~8.6s,
// with each octave split into 4 linear sub-buckets. A plain power-of-2
// ladder put every call-setup latency between 268ms and 537ms into one
// bucket, so the reported p50 read exactly 2^29 ns (536.870912ms)
// regardless of where the mass actually sat; quarter-octave buckets
// plus linear interpolation inside the bucket (see Snapshot) bound the
// quantile error at a few percent instead of a factor of two.
const (
	histMinExp = 10 // first bucket: everything ≤ 2^10 ns (1µs)
	histMaxExp = 33 // last bound: 2^33 ns (~8.6s); beyond is overflow
	histSubs   = 4  // linear sub-buckets per octave (power of two)
)

// latencyBounds are the bucket upper bounds in nanoseconds: index 0 is
// the ≤1µs catch-all, then 4 bounds per octave at 2^k·{1.25, 1.5,
// 1.75, 2.0} up to 2^33.
var latencyBounds = func() []int64 {
	b := make([]int64, 0, 1+(histMaxExp-histMinExp)*histSubs)
	b = append(b, 1<<histMinExp)
	for k := histMinExp; k < histMaxExp; k++ {
		lo, step := int64(1)<<k, int64(1)<<(k-2)
		for j := int64(1); j <= histSubs; j++ {
			b = append(b, lo+j*step)
		}
	}
	return b
}()

// bucketIndex maps a latency to its bucket in O(1) with bit math
// (the sub-bucketed ladder is too long for the old linear scan).
func bucketIndex(ns int64) int {
	if ns <= 1<<histMinExp {
		return 0
	}
	if ns > 1<<histMaxExp {
		return len(latencyBounds) // overflow bucket
	}
	// ns in (2^k, 2^(k+1)]: octave k, then which quarter of it.
	k := bits.Len64(uint64(ns-1)) - 1
	j := int((ns - 1 - int64(1)<<k) >> (k - 2))
	return 1 + (k-histMinExp)*histSubs + j
}

// Histogram is a fixed-bucket latency histogram. Observations are
// lock-free; Snapshot is a consistent-enough read for monitoring (each
// bucket is read atomically, but the set of buckets is not read in one
// instant). All methods are no-ops on a nil receiver.
type Histogram struct {
	counts []atomic.Uint64 // len(latencyBounds)+1; last is overflow
	sum    atomic.Int64    // total nanoseconds observed
	n      atomic.Uint64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, len(latencyBounds)+1)}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	h.counts[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
}

// nopTimer is returned by Timer on a nil histogram so the disabled
// path allocates nothing.
var nopTimer = func() {}

// Timer starts timing and returns a stop function that records the
// elapsed time. On a nil receiver it returns a shared no-op.
func (h *Histogram) Timer() func() {
	if h == nil {
		return nopTimer
	}
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

// ObserveSince records the time elapsed since start. It is the
// allocation-free alternative to Timer for hot paths: deferring a
// method call with an evaluated argument builds no closure. Nil-safe.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start))
	}
}

// HistSnapshot is a point-in-time summary of a histogram.
type HistSnapshot struct {
	Count uint64
	Sum   time.Duration
	Avg   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Snapshot summarizes the histogram. Quantiles interpolate linearly
// within the bucket containing the quantile point, assuming samples
// are uniformly spread across the bucket; with quarter-octave buckets
// that bounds the error at ~6% of the value. The overflow bucket has
// no upper bound, so quantiles landing there report twice the last
// bound.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s.Count = total
	s.Sum = time.Duration(h.sum.Load())
	if total == 0 {
		return s
	}
	s.Avg = s.Sum / time.Duration(total)
	q := func(p float64) time.Duration {
		target := p * float64(total)
		if target < 1 {
			target = 1
		}
		var cum uint64
		for i, c := range counts {
			if float64(cum+c) >= target && c > 0 {
				if i >= len(latencyBounds) {
					return time.Duration(latencyBounds[len(latencyBounds)-1]) * 2
				}
				var lo int64
				if i > 0 {
					lo = latencyBounds[i-1]
				}
				hi := latencyBounds[i]
				frac := (target - float64(cum)) / float64(c)
				return time.Duration(lo + int64(frac*float64(hi-lo)))
			}
			cum += c
		}
		return s.Sum
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

// Registry holds named instruments. Instruments are created on first
// lookup and live for the registry's lifetime; callers should resolve
// an instrument once (at object construction) and hold the pointer.
// All methods are safe for concurrent use and nil-safe: lookups on a
// nil registry return nil instruments.
type Registry struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram
	tracer   *Tracer
}

// NewRegistry creates an empty registry with a tracer of the default
// capacity. The registry's tracer starts disarmed — the signal trace
// is a debugging aid, and formatting every envelope and transition
// into it costs several allocations per event; the HTTP expose handler
// arms it on first scrape, so tracing switches on exactly when someone
// starts watching.
func NewRegistry() *Registry {
	r := &Registry{tracer: NewTracer(2048)}
	r.tracer.Arm(false)
	return r
}

// Counter returns the named counter, creating it if needed; nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, new(Counter))
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it if needed; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, new(Gauge))
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it if needed; nil on
// a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, newHistogram())
	return v.(*Histogram)
}

// Tracer returns the registry's signal tracer; nil on a nil registry.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// GaugeSnapshot is a point-in-time reading of a gauge.
type GaugeSnapshot struct {
	Value     int64
	HighWater int64
}

// Snapshot is a consistent-enough point-in-time copy of every
// instrument in a registry.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]GaugeSnapshot
	Histograms map[string]HistSnapshot
	Trace      []TraceEvent
}

// Snapshot reads every instrument. It is safe to call concurrently
// with instrument updates; on a nil registry it returns empty maps.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		g := v.(*Gauge)
		s.Gauges[k.(string)] = GaugeSnapshot{Value: g.Value(), HighWater: g.HighWater()}
		return true
	})
	r.hists.Range(func(k, v any) bool {
		s.Histograms[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	s.Trace = r.tracer.Events()
	return s
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// def is the process-wide default registry. It is nil until Enable or
// SetDefault installs one; all package-level lookups then resolve
// against it.
var def atomic.Pointer[Registry]

// Enable installs a fresh default registry if none is set and returns
// the default. It is idempotent.
func Enable() *Registry {
	if r := def.Load(); r != nil {
		return r
	}
	def.CompareAndSwap(nil, NewRegistry())
	return def.Load()
}

// SetDefault replaces the default registry; pass nil to disable
// telemetry. Intended for tests and process startup, before the
// instrumented stack is constructed.
func SetDefault(r *Registry) {
	def.Store(r)
}

// Default returns the default registry, or nil when telemetry is
// disabled.
func Default() *Registry { return def.Load() }

// Enabled reports whether a default registry is installed. Hot paths
// that would build instrument names dynamically should check it first
// to avoid the string work when telemetry is off.
func Enabled() bool { return def.Load() != nil }

// C resolves a counter in the default registry (nil when disabled).
func C(name string) *Counter { return def.Load().Counter(name) }

// G resolves a gauge in the default registry (nil when disabled).
func G(name string) *Gauge { return def.Load().Gauge(name) }

// H resolves a histogram in the default registry (nil when disabled).
func H(name string) *Histogram { return def.Load().Histogram(name) }

// T resolves the default registry's tracer (nil when disabled).
func T() *Tracer { return def.Load().Tracer() }
