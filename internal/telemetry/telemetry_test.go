package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("counter lookup must be stable")
	}
	g := r.Gauge("g")
	g.Add(3)
	g.Inc()
	g.Dec()
	if g.Value() != 3 || g.HighWater() != 4 {
		t.Fatalf("gauge = %d hwm=%d, want 3 hwm=4", g.Value(), g.HighWater())
	}
	g.Set(-2)
	if g.Value() != -2 || g.HighWater() != 4 {
		t.Fatalf("after Set: %d hwm=%d", g.Value(), g.HighWater())
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var r *Registry
	c.Inc()
	c.Add(2)
	g.Add(1)
	g.Set(9)
	h.Observe(time.Second)
	h.Timer()()
	tr.Record("k", "s", "d")
	if c.Value() != 0 || g.Value() != 0 || g.HighWater() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if h.Snapshot().Count != 0 || tr.Events() != nil || tr.Len() != 0 {
		t.Fatal("nil snapshot must be empty")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil || r.Tracer() != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	// 90 fast samples, 10 slow ones: p50 small, p99 large.
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 > time.Millisecond {
		t.Fatalf("p50 = %v, want microseconds", s.P50)
	}
	if s.P99 < 10*time.Millisecond {
		t.Fatalf("p99 = %v, want tens of ms", s.P99)
	}
	if s.Avg <= 0 || s.Sum <= 0 {
		t.Fatalf("avg=%v sum=%v", s.Avg, s.Sum)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record("send", "box", string(rune('a'+i)))
	}
	evs := tr.Events()
	if len(evs) != 4 || tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	if tr.Recorded() != 6 {
		t.Fatalf("recorded = %d, want 6", tr.Recorded())
	}
	// Oldest first, and the two oldest events were overwritten.
	if evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("ring order wrong: %v", evs)
	}
	if evs[0].Detail != "c" || evs[3].Detail != "f" {
		t.Fatalf("ring contents wrong: %v", evs)
	}
}

func TestDefaultRegistry(t *testing.T) {
	SetDefault(nil)
	defer SetDefault(nil)
	if Enabled() || C("x") != nil || G("x") != nil || H("x") != nil || T() != nil {
		t.Fatal("disabled default must resolve nil instruments")
	}
	r := Enable()
	if r == nil || Default() != r || Enable() != r {
		t.Fatal("Enable must install and return a stable default")
	}
	C("x").Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("package-level lookup must hit the default registry")
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(7)
	r.Counter("a.count").Add(3)
	r.Gauge("q.depth").Add(5)
	r.Histogram("lat").Observe(3 * time.Millisecond)
	r.Tracer().Record("send", "boxA", "open")

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"counter a.count 3\n",
		"counter b.count 7\n",
		"gauge q.depth 5 hwm=5\n",
		"hist lat count=1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if strings.Index(body, "a.count") > strings.Index(body, "b.count") {
		t.Fatal("exposition must be sorted")
	}
	if strings.Contains(body, "boxA") {
		t.Fatal("trace must be absent without ?trace=1")
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?trace=1", nil))
	if !strings.Contains(rec.Body.String(), "send boxA open") {
		t.Fatalf("trace missing:\n%s", rec.Body.String())
	}
}
