package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("counter lookup must be stable")
	}
	g := r.Gauge("g")
	g.Add(3)
	g.Inc()
	g.Dec()
	if g.Value() != 3 || g.HighWater() != 4 {
		t.Fatalf("gauge = %d hwm=%d, want 3 hwm=4", g.Value(), g.HighWater())
	}
	g.Set(-2)
	if g.Value() != -2 || g.HighWater() != 4 {
		t.Fatalf("after Set: %d hwm=%d", g.Value(), g.HighWater())
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var r *Registry
	c.Inc()
	c.Add(2)
	g.Add(1)
	g.Set(9)
	h.Observe(time.Second)
	h.Timer()()
	tr.Record("k", "s", "d")
	if c.Value() != 0 || g.Value() != 0 || g.HighWater() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if h.Snapshot().Count != 0 || tr.Events() != nil || tr.Len() != 0 {
		t.Fatal("nil snapshot must be empty")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil || r.Tracer() != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	// 90 fast samples, 10 slow ones: p50 small, p99 large.
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 > time.Millisecond {
		t.Fatalf("p50 = %v, want microseconds", s.P50)
	}
	if s.P99 < 10*time.Millisecond {
		t.Fatalf("p99 = %v, want tens of ms", s.P99)
	}
	if s.Avg <= 0 || s.Sum <= 0 {
		t.Fatalf("avg=%v sum=%v", s.Avg, s.Sum)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
}

// TestHistogramQuantileAccuracy pins quantile accuracy to a few
// percent. The regression it guards: with plain power-of-2 buckets,
// every setup latency between 268ms and 537ms collapsed into one
// bucket and p50 read exactly 536.870912ms (2^29 ns) no matter the
// workload. Quarter-octave sub-buckets plus in-bucket interpolation
// must recover the real location of the mass.
func TestHistogramQuantileAccuracy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	// 700 samples at 300ms, 300 at 900ms: p50 is in the 300ms mass,
	// p95 in the 900ms mass — both well inside an octave.
	for i := 0; i < 700; i++ {
		h.Observe(300 * time.Millisecond)
	}
	for i := 0; i < 300; i++ {
		h.Observe(900 * time.Millisecond)
	}
	s := h.Snapshot()
	within := func(name string, got, want time.Duration, tol float64) {
		t.Helper()
		lo := time.Duration(float64(want) * (1 - tol))
		hi := time.Duration(float64(want) * (1 + tol))
		if got < lo || got > hi {
			t.Fatalf("%s = %v, want within %.0f%% of %v", name, got, tol*100, want)
		}
	}
	within("p50", s.P50, 300*time.Millisecond, 0.10)
	within("p95", s.P95, 900*time.Millisecond, 0.10)
	if s.P50 == time.Duration(1<<29) {
		t.Fatalf("p50 reads exactly 2^29 ns: bucket upper bound leaked through again")
	}

	// A point mass must read close to itself at every quantile.
	r2 := NewRegistry()
	h2 := r2.Histogram("h2")
	for i := 0; i < 1000; i++ {
		h2.Observe(100 * time.Millisecond)
	}
	s2 := h2.Snapshot()
	within("point-mass p50", s2.P50, 100*time.Millisecond, 0.10)
	within("point-mass p99", s2.P99, 100*time.Millisecond, 0.10)
}

// TestHistogramBucketIndex checks the O(1) bit-math bucketing against
// the bounds table it indexes into.
func TestHistogramBucketIndex(t *testing.T) {
	for _, ns := range []int64{1, 1023, 1024, 1025, 1280, 1281, 1 << 20,
		1<<20 + 1, 300_000_000, 1 << 33, 1<<33 + 1, 1 << 40} {
		i := bucketIndex(ns)
		if i < len(latencyBounds) && ns > latencyBounds[i] {
			t.Fatalf("ns=%d: bucket %d has bound %d < ns", ns, i, latencyBounds[i])
		}
		if i > 0 && i <= len(latencyBounds) && ns <= latencyBounds[i-1] {
			t.Fatalf("ns=%d: belongs below bucket %d (prev bound %d)", ns, i, latencyBounds[i-1])
		}
		if i == len(latencyBounds) && ns <= latencyBounds[len(latencyBounds)-1] {
			t.Fatalf("ns=%d: sent to overflow but fits the table", ns)
		}
	}
	for i, b := range latencyBounds {
		if got := bucketIndex(b); got != i {
			t.Fatalf("bound %d (index %d) buckets to %d", b, i, got)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record("send", "box", string(rune('a'+i)))
	}
	evs := tr.Events()
	if len(evs) != 4 || tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	if tr.Recorded() != 6 {
		t.Fatalf("recorded = %d, want 6", tr.Recorded())
	}
	// Oldest first, and the two oldest events were overwritten.
	if evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("ring order wrong: %v", evs)
	}
	if evs[0].Detail != "c" || evs[3].Detail != "f" {
		t.Fatalf("ring contents wrong: %v", evs)
	}
}

func TestDefaultRegistry(t *testing.T) {
	SetDefault(nil)
	defer SetDefault(nil)
	if Enabled() || C("x") != nil || G("x") != nil || H("x") != nil || T() != nil {
		t.Fatal("disabled default must resolve nil instruments")
	}
	r := Enable()
	if r == nil || Default() != r || Enable() != r {
		t.Fatal("Enable must install and return a stable default")
	}
	C("x").Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("package-level lookup must hit the default registry")
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(7)
	r.Counter("a.count").Add(3)
	r.Gauge("q.depth").Add(5)
	r.Histogram("lat").Observe(3 * time.Millisecond)
	r.Tracer().Record("send", "boxA", "open")

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"counter a.count 3\n",
		"counter b.count 7\n",
		"gauge q.depth 5 hwm=5\n",
		"hist lat count=1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if strings.Index(body, "a.count") > strings.Index(body, "b.count") {
		t.Fatal("exposition must be sorted")
	}
	if strings.Contains(body, "boxA") {
		t.Fatal("trace must be absent without ?trace=1")
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?trace=1", nil))
	if !strings.Contains(rec.Body.String(), "send boxA open") {
		t.Fatalf("trace missing:\n%s", rec.Body.String())
	}
}
