// Signal tracer: a bounded ring buffer of timestamped events — an
// envelope crossing a box edge, or a slot FSM transition — for live
// message-sequence debugging without unbounded memory growth. The
// tracer keeps the most recent events; older ones are overwritten.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one recorded event.
type TraceEvent struct {
	Seq    uint64    // global sequence number, increasing
	At     time.Time // wall-clock time of the event
	Kind   string    // "send", "recv", "slot", ...
	Source string    // box or slot the event belongs to
	Detail string    // free-form payload (signal, transition, ...)
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("#%d %s %s %s %s", e.Seq, e.At.Format("15:04:05.000000"), e.Kind, e.Source, e.Detail)
}

// Tracer is a bounded ring buffer of TraceEvents. All methods are safe
// for concurrent use and are no-ops on a nil receiver.
type Tracer struct {
	armed atomic.Bool // advisory: should call sites bother formatting?
	mu    sync.Mutex
	buf   []TraceEvent
	next  int // index of the next write
	seq   uint64
	full  bool
}

// NewTracer creates a tracer keeping the most recent capacity events.
// A new tracer is armed.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{buf: make([]TraceEvent, capacity)}
	t.armed.Store(true)
	return t
}

// Arm sets whether hot-path call sites should feed the tracer. The
// flag is advisory: Record itself always records. It exists so the
// expensive part — rendering an envelope or a transition to a string —
// can be skipped entirely while nobody is watching the trace, which is
// the difference between a free tracer and several allocations per
// event. Nil-safe.
func (t *Tracer) Arm(on bool) {
	if t != nil {
		t.armed.Store(on)
	}
}

// Armed reports whether call sites should format and record events.
// Nil tracers are never armed.
func (t *Tracer) Armed() bool { return t != nil && t.armed.Load() }

// Record appends an event, overwriting the oldest if the buffer is
// full. It is a no-op on a nil receiver.
func (t *Tracer) Record(kind, source, detail string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.seq++
	t.buf[t.next] = TraceEvent{Seq: t.seq, At: now, Kind: kind, Source: source, Detail: detail}
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Events returns the buffered events, oldest first. Nil receivers
// return nil.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]TraceEvent(nil), t.buf[:t.next]...)
	}
	out := make([]TraceEvent, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Len reports how many events are buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Recorded reports the total number of events ever recorded, including
// overwritten ones.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
