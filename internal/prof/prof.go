// Package prof wires the -cpuprofile/-memprofile flags of the storm
// harnesses to runtime/pprof. A Session brackets the interesting part
// of a run: Start begins the CPU profile immediately; Stop ends it and
// captures the allocation profile (the "allocs" profile, which counts
// every allocation since process start, not just live heap) so a storm
// leg can be diagnosed object-by-object with `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session is an in-flight profiling capture. The zero value (from
// Start with both paths empty) is inert and safe to Stop.
type Session struct {
	cpu     *os.File
	memPath string
}

// Start begins profiling per the flag values: a CPU profile streaming
// to cpuPath, an allocation profile to be written to memPath at Stop.
// Either path may be empty to skip that profile.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		s.cpu = f
	}
	return s, nil
}

// Stop ends the CPU profile and writes the allocation profile. Safe on
// a nil or inert session.
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	if s.cpu != nil {
		pprof.StopCPUProfile()
		err := s.cpu.Close()
		s.cpu = nil
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		defer f.Close()
		runtime.GC() // flush pending frees so alloc counts are settled
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		s.memPath = ""
	}
	return nil
}
