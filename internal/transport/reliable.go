// The reliable layer: at-least-once retransmission, duplicate
// suppression, and transparent reconnection over lossy, severable
// links. The slot FSM (paper Figures 9/10) and the Section V temporal
// formulas are proved over two-way FIFO reliable channels; RelNetwork
// restores exactly that abstraction when the wire underneath drops,
// duplicates, reorders, or dies. Stacked as RelNetwork(FaultNetwork(
// mem|tcp)) it is the recovery half of the chaos story: the fault
// layer breaks the wire, this layer repairs the channel, and the box
// runtime above sees at most a delivery blip.
//
// Protocol. Every data envelope is stamped with a per-channel sequence
// number (slot.SendTracker) and retained until cumulatively acked.
// The receiver (slot.RecvTracker) delivers in order, absorbs
// reordering, and drops duplicates, counting them under
// slot.dup_dropped. Acks are cumulative and delayed: a short wheel
// timer batches them, and every AckEvery deliveries forces one out
// immediately. A rexmit timer resends the unacked suffix, counted
// under slot.retransmits. Control traffic (hello, ack) travels as
// MetaApp envelopes consumed by this layer; boxes never see it, and
// delivered envelopes have their sequence stripped, so nothing above
// this layer changes.
//
// Reconnection. The dialing side owns recovery: when the underlying
// port dies it re-dials with exponential backoff plus jitter on the
// shared timer wheel, then replays a hello carrying the channel id and
// its cumulative ack. The accepting side rebinds a hello with a known
// id to the existing RelPort — same identity, same queues — so
// runners see a blip rather than a portLost. Both sides trim their
// send buffers from the hello acks and retransmit the rest. Recovery
// is bounded: a channel that stays down past GiveUpAfter is abandoned
// (path.giveups), its receive queue closes, and the runner's portLost
// path drives the slots to closed — degraded, but never wedged.
package transport

import (
	"math/rand"
	"strconv"
	"sync"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/timerwheel"
)

// Control envelope application names, never delivered to boxes.
const (
	relHelloApp = "rel/hello"
	relAckApp   = "rel/ack"
	// relResetApp is the acceptor's refusal of a resume hello whose
	// channel identity it does not know: the acceptor lost its channel
	// state (typically a process restart), so the dialer's sequence
	// space is meaningless to it. The dialer must fail the channel
	// cleanly rather than re-adopt it — re-adopting would wedge the
	// receiver behind sequence numbers that will never arrive.
	relResetApp = "rel/reset"
)

// resetMeta is the shared payload of every reset envelope.
var resetMeta = &sig.Meta{Kind: sig.MetaApp, App: relResetApp}

// ackMeta is the shared payload of every ack envelope; the cumulative
// ack rides in the envelope's Seq field, so acking allocates nothing.
var ackMeta = &sig.Meta{Kind: sig.MetaApp, App: relAckApp}

// RelConfig tunes the reliable layer. The zero value gets defaults
// sized for the shared 5ms timer wheel.
type RelConfig struct {
	// RexmitInterval is the retransmission period for unacked
	// envelopes. Default 60ms.
	RexmitInterval time.Duration
	// AckDelay is how long a cumulative ack may wait to batch with
	// later deliveries. Default 15ms (must be well under
	// RexmitInterval or every envelope retransmits once).
	AckDelay time.Duration
	// AckEvery forces an immediate ack after this many deliveries.
	// Default 32.
	AckEvery int
	// RedialMin/RedialMax bound the exponential reconnect backoff.
	// Defaults 10ms and 640ms.
	RedialMin time.Duration
	RedialMax time.Duration
	// GiveUpAfter bounds recovery: a channel continuously down this
	// long is abandoned. Default 10s.
	GiveUpAfter time.Duration
	// Seed seeds the backoff jitter PRNG.
	Seed int64
}

func (c RelConfig) withDefaults() RelConfig {
	if c.RexmitInterval <= 0 {
		c.RexmitInterval = 60 * time.Millisecond
	}
	if c.AckDelay <= 0 {
		c.AckDelay = 15 * time.Millisecond
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 32
	}
	if c.RedialMin <= 0 {
		c.RedialMin = 10 * time.Millisecond
	}
	if c.RedialMax < c.RedialMin {
		c.RedialMax = 640 * time.Millisecond
	}
	if c.GiveUpAfter <= 0 {
		c.GiveUpAfter = 10 * time.Second
	}
	return c
}

// RelNetwork layers reliability over any Network. Both ends of a
// channel must run the layer: its ports speak the hello/ack protocol.
type RelNetwork struct {
	under Network
	cfg   RelConfig
	wheel *timerwheel.Wheel

	mu     sync.Mutex
	rng    *rand.Rand
	nextID uint64

	reconnects *telemetry.Counter
	giveups    *telemetry.Counter
	resets     *telemetry.Counter
	retransmit *telemetry.Counter
	dupDropped *telemetry.Counter
}

// NewRelNetwork wraps under with the reliable layer.
func NewRelNetwork(under Network, cfg RelConfig) *RelNetwork {
	return &RelNetwork{
		under:      under,
		cfg:        cfg.withDefaults(),
		wheel:      procWheel(),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		reconnects: telemetry.C(MetricReconnects),
		giveups:    telemetry.C(MetricGiveups),
		resets:     telemetry.C(MetricResets),
		retransmit: telemetry.C(slot.MetricRetransmits),
		dupDropped: telemetry.C(slot.MetricDupDropped),
	}
}

func (n *RelNetwork) jitter(d time.Duration) time.Duration {
	n.mu.Lock()
	j := time.Duration(n.rng.Int63n(int64(d)/2 + 1))
	n.mu.Unlock()
	return d + j
}

func (n *RelNetwork) newChannelID(addr string) string {
	n.mu.Lock()
	id := n.nextID
	n.nextID++
	salt := n.rng.Uint32()
	n.mu.Unlock()
	return addr + "#" + strconv.FormatUint(id, 10) + "." + strconv.FormatUint(uint64(salt), 16)
}

// Dial implements Network: it dials the underlying network, announces
// a fresh channel identity, and returns the reliable port.
func (n *RelNetwork) Dial(addr string) (Port, error) {
	under, err := n.under.Dial(addr)
	if err != nil {
		return nil, err
	}
	p := newRelPort(n, n.newChannelID(addr), addr, true)
	p.adopt(under, 0)
	return p, nil
}

// Listen implements Network.
func (n *RelNetwork) Listen(addr string) (Listener, error) {
	under, err := n.under.Listen(addr)
	if err != nil {
		return nil, err
	}
	l := &relListener{
		under:  under,
		net:    n,
		byID:   map[string]*RelPort{},
		accept: make(chan *RelPort, 16),
		done:   make(chan struct{}),
	}
	go l.run()
	return l, nil
}

// relListener greets every accepted underlying channel and either
// surfaces a new RelPort or rebinds a reconnect to its existing one.
type relListener struct {
	under  Listener
	net    *RelNetwork
	accept chan *RelPort
	done   chan struct{}
	once   sync.Once

	mu   sync.Mutex
	byID map[string]*RelPort
}

func (l *relListener) run() {
	for {
		p, err := l.under.Accept()
		if err != nil {
			l.Close()
			return
		}
		go l.greet(p)
	}
}

// greet reads the hello that opens every reliable channel and routes
// the connection: a known id rebinds, an unknown one is a new channel.
// The hello may have been dropped by a faulty wire while data behind
// it survived, so greet skips a bounded amount of non-hello traffic —
// the dialer retries its hello, and the skipped data is sequenced, so
// retransmission replays it once the channel is bound.
func (l *relListener) greet(under Port) {
	var buf [1]sig.Envelope
	var hello sig.Envelope
	for skipped := 0; ; skipped++ {
		if skipped > 1024 {
			under.Close() // not speaking the reliable protocol
			return
		}
		if bp, ok := under.(BatchPort); ok {
			if c, ok := bp.RecvBatch(buf[:]); !ok || c == 0 {
				under.Close()
				return
			}
			hello = buf[0]
		} else {
			e, ok := <-under.Recv()
			if !ok {
				under.Close()
				return
			}
			hello = e
		}
		if m := hello.Meta; m != nil && m.Kind == sig.MetaApp && m.App == relHelloApp {
			break
		}
	}
	m := hello.Meta
	id := m.Get("id")
	resume := m.Get("mode") == "resume"
	peerAck64, _ := strconv.ParseUint(m.Get("ack"), 10, 32)
	peerAck := uint32(peerAck64)
	hello.Release() // layer control, consumed here (attr strings stay valid)

	l.mu.Lock()
	p, known := l.byID[id]
	if !known && resume {
		// The dialer is resuming a channel we have no state for: this
		// process restarted since the channel was established. Adopting
		// it as new would wedge the dialer's receive window behind
		// sequence numbers that died with the old process — refuse with
		// a reset so the dialer fails the channel fast and redials a
		// fresh one.
		l.mu.Unlock()
		under.Send(sig.Envelope{Meta: resetMeta})
		under.Close()
		return
	}
	if !known {
		p = newRelPort(l.net, id, "", false)
		p.lst = l
		l.byID[id] = p
	}
	l.mu.Unlock()

	if known {
		p.rebind(under, peerAck)
		return
	}
	p.adopt(under, peerAck)
	select {
	case l.accept <- p:
	case <-l.done:
		p.Close()
	}
}

func (l *relListener) forget(id string) {
	l.mu.Lock()
	delete(l.byID, id)
	l.mu.Unlock()
}

func (l *relListener) Accept() (Port, error) {
	select {
	case p, ok := <-l.accept:
		if !ok {
			return nil, ErrClosed
		}
		return p, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *relListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.under.Close()
	})
	return nil
}

func (l *relListener) Addr() string { return l.under.Addr() }

// RelPort is one end of a reliable signaling channel. It implements
// Port and BatchPort; its identity survives reconnection of the
// underlying transport.
type RelPort struct {
	net *RelNetwork
	cfg RelConfig
	id  string

	dialer bool
	addr   string       // redial target (dialer side)
	lst    *relListener // registry to leave on close (acceptor side)

	up *queue // in-order deliveries, Seq stripped

	mu          sync.Mutex
	under       Port // nil while disconnected
	gen         int  // bumps on every (re)bind; stales old pumps
	resumed     bool // dialer side: at least one redial happened; hellos carry mode=resume
	st          slot.SendTracker
	rt          slot.RecvTracker
	closing     bool // clean shutdown observed; do not recover or count a giveup
	closed      bool
	lingering   bool // Close deferred until the unacked tail is delivered
	greeted     bool // the current binding has seen incoming traffic
	rexmitArmed bool
	ackPending  bool
	sinceAck    int
	downSince   time.Time
}

func newRelPort(n *RelNetwork, id, addr string, dialer bool) *RelPort {
	return &RelPort{
		net:    n,
		cfg:    n.cfg,
		id:     id,
		dialer: dialer,
		addr:   addr,
		up:     newQueue(telemetry.G(MetricQueueDepth), nil, 0),
	}
}

// adopt binds the first underlying port: sends our hello, trims from
// the peer's ack, and starts the pump.
func (p *RelPort) adopt(under Port, peerAck uint32) {
	p.mu.Lock()
	p.under = under
	p.gen++
	gen := p.gen
	p.greeted = false
	p.st.Ack(peerAck)
	p.sendHelloLocked(under)
	p.armHelloRetryLocked(gen, 0)
	p.mu.Unlock()
	go p.pump(under, gen)
}

// rebind swaps a reconnected underlying port into a live channel:
// hello back, trim, retransmit the unacked suffix, restart the pump.
// Boxes above notice nothing.
func (p *RelPort) rebind(under Port, peerAck uint32) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		under.Close()
		return
	}
	if old := p.under; old != nil {
		// A reconnect raced a live binding (e.g. the peer redialed
		// before our pump saw the death): the newest wire wins.
		old.Close()
	}
	if p.dialer {
		p.resumed = true
	}
	p.under = under
	p.gen++
	gen := p.gen
	p.greeted = false
	p.downSince = time.Time{}
	p.st.Ack(peerAck)
	p.sendHelloLocked(under)
	p.armHelloRetryLocked(gen, 0)
	p.resendUnackedLocked(under)
	p.armRexmitLocked()
	p.mu.Unlock()
	go p.pump(under, gen)
}

// sendHelloLocked announces identity and receive progress on a fresh
// underlying port. A dialer that has redialed at least once marks its
// hello mode=resume, licensing the acceptor to reset the channel if it
// no longer knows the identity. Caller holds p.mu.
func (p *RelPort) sendHelloLocked(under Port) {
	mode := "new"
	if p.resumed {
		mode = "resume"
	}
	under.Send(sig.Envelope{Meta: &sig.Meta{
		Kind: sig.MetaApp,
		App:  relHelloApp,
		Attrs: sig.NewAttrs(
			"id", p.id,
			"ack", strconv.FormatUint(uint64(p.rt.CumAck()), 10),
			"mode", mode,
		),
	}})
}

// maxHelloTries bounds hello retransmission; past it the ordinary
// give-up machinery owns the outcome.
const maxHelloTries = 8

// armHelloRetryLocked guards the one unsequenced envelope of the
// protocol: the hello that announces a binding. A lossy wire may eat
// it, leaving the acceptor never learning the channel exists, so the
// hello is re-sent on the wheel until the binding sees any incoming
// traffic — proof the peer knows us. Caller holds p.mu.
func (p *RelPort) armHelloRetryLocked(gen, tries int) {
	if tries >= maxHelloTries {
		return
	}
	p.net.wheel.Schedule(p.cfg.RexmitInterval, func() { p.onHelloRetry(gen, tries) })
}

func (p *RelPort) onHelloRetry(gen, tries int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.greeted || p.gen != gen || p.under == nil {
		return
	}
	p.sendHelloLocked(p.under)
	p.armHelloRetryLocked(gen, tries+1)
}

// resendUnackedLocked retransmits every retained envelope. Caller
// holds p.mu.
func (p *RelPort) resendUnackedLocked(under Port) {
	n := 0
	p.st.Unacked(func(e sig.Envelope) bool {
		n++
		return under.Send(e) == nil
	})
	if n > 0 {
		p.net.retransmit.Add(uint64(n))
	}
}

// Send implements Port. Every envelope is stamped and retained until
// acked; while the channel is between wires the envelope is only
// retained, and the eventual rebind replays it.
func (p *RelPort) Send(e sig.Envelope) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if e.Meta != nil && e.Meta.Kind == sig.MetaTeardown {
		// The box is tearing the channel down cleanly; losing the wire
		// after this is not a fault worth recovering.
		p.closing = true
	}
	stamped := p.st.Stamp(e)
	under := p.under
	p.armRexmitLocked()
	p.mu.Unlock()
	if under == nil {
		return nil
	}
	// The envelope is in the send tracker: even if this wire dies mid-
	// send, the retransmit path delivers it over the next one. A wire
	// error here is not a channel error — the pump notices the loss and
	// redials — so the reliable contract ("accepted for delivery")
	// holds and Send reports success.
	under.Send(stamped)
	return nil
}

// armRexmitLocked keeps exactly one self-rearming retransmit timer
// alive while anything is unacked. Caller holds p.mu.
func (p *RelPort) armRexmitLocked() {
	if p.rexmitArmed || p.closed || p.st.Len() == 0 {
		return
	}
	p.rexmitArmed = true
	p.net.wheel.Schedule(p.cfg.RexmitInterval, p.onRexmit)
}

func (p *RelPort) onRexmit() {
	p.mu.Lock()
	p.rexmitArmed = false
	if p.closed || p.st.Len() == 0 {
		p.mu.Unlock()
		return
	}
	if under := p.under; under != nil {
		p.resendUnackedLocked(under)
	}
	p.armRexmitLocked()
	p.mu.Unlock()
}

// pump drains one underlying port into the channel. One pump runs per
// binding; gen stales it after a rebind.
func (p *RelPort) pump(under Port, gen int) {
	if bp, ok := under.(BatchPort); ok {
		buf := make([]sig.Envelope, 64)
		for {
			n, ok := bp.RecvBatch(buf)
			if !ok {
				break
			}
			for i := 0; i < n; i++ {
				p.handleIn(buf[i], gen)
			}
		}
	} else {
		for e := range under.Recv() {
			p.handleIn(e, gen)
		}
	}
	p.wireLost(under, gen)
}

// handleIn routes one arriving envelope: layer control is consumed
// here, data goes through the receive tracker to the up queue. gen
// identifies the binding the envelope arrived on, so stale pumps
// cannot mark a fresh binding as greeted.
func (p *RelPort) handleIn(e sig.Envelope, gen int) {
	if m := e.Meta; m != nil && m.Kind == sig.MetaApp {
		switch m.App {
		case relAckApp:
			e.Release() // layer control, consumed here
			p.mu.Lock()
			if gen == p.gen {
				p.greeted = true
			}
			p.st.Ack(e.Seq)
			done := p.lingering && p.st.Len() == 0
			p.mu.Unlock()
			if done {
				p.closeNow() // the lingering tail is delivered; finish the close
			}
			return
		case relResetApp:
			// The acceptor does not know this channel (its process
			// restarted): the channel is unrecoverable. Fail it now —
			// the up queue closes, the runner sees portLost and
			// synthesizes a teardown, and the box above redials a fresh
			// channel with a fresh identity.
			e.Release() // layer control, consumed here
			p.reset(gen)
			return
		case relHelloApp:
			// A hello on a live binding is the peer's reply after a
			// reconnect: trim and replay what it still lacks.
			ack64, _ := strconv.ParseUint(m.Get("ack"), 10, 32)
			e.Release() // layer control, consumed here
			p.mu.Lock()
			if gen == p.gen {
				p.greeted = true
			}
			p.st.Ack(uint32(ack64))
			if under := p.under; under != nil {
				p.resendUnackedLocked(under)
				p.armRexmitLocked()
			}
			p.mu.Unlock()
			return
		}
	}
	p.mu.Lock()
	if gen == p.gen {
		p.greeted = true
	}
	if e.Meta != nil && e.Meta.Kind == sig.MetaTeardown {
		// The peer is tearing down cleanly: the wire dying next is
		// expected, not a fault to recover.
		p.closing = true
	}
	if p.rt.Accept(e, p.deliver) {
		e.Release() // duplicate: dropped without delivery
		p.net.dupDropped.Inc()
	}
	p.scheduleAckLocked()
	p.mu.Unlock()
}

// deliver hands one in-order envelope to the box side, sequence
// stripped so everything above this layer sees the paper's wire.
// Called by rt.Accept with p.mu held.
func (p *RelPort) deliver(e sig.Envelope) {
	e.Seq = 0
	p.up.push(e)
}

// scheduleAckLocked batches cumulative acks: a short timer sweeps up
// a burst, and every AckEvery deliveries forces one out now. Caller
// holds p.mu.
func (p *RelPort) scheduleAckLocked() {
	p.sinceAck++
	if p.sinceAck >= p.cfg.AckEvery {
		p.sendAckLocked()
		return
	}
	if !p.ackPending {
		p.ackPending = true
		p.net.wheel.Schedule(p.cfg.AckDelay, p.flushAck)
	}
}

func (p *RelPort) flushAck() {
	p.mu.Lock()
	p.ackPending = false
	if !p.closed && p.sinceAck > 0 {
		p.sendAckLocked()
	}
	p.mu.Unlock()
}

// sendAckLocked emits the cumulative ack in the envelope's Seq field
// over a shared static meta: acking allocates nothing. Caller holds
// p.mu.
func (p *RelPort) sendAckLocked() {
	p.sinceAck = 0
	cum := p.rt.CumAck()
	if cum == 0 || p.under == nil {
		return
	}
	p.under.Send(sig.Envelope{Seq: cum, Meta: ackMeta})
}

// wireLost is the pump's parting report: the underlying port died.
// Dialer side starts the backoff redial ladder; acceptor side waits
// for the peer to come back, bounded by the give-up budget either way.
func (p *RelPort) wireLost(under Port, gen int) {
	p.mu.Lock()
	if p.gen != gen || p.under != under {
		p.mu.Unlock()
		return // a rebind already replaced this wire
	}
	p.under = nil
	// The wire is dead for receiving but its send side may still hold
	// resources (a TCP writer goroutine, a socket fd): release it.
	under.Close()
	if p.closed || p.closing {
		closed := p.closed
		p.closed = true
		p.mu.Unlock()
		if !closed {
			p.finish()
		}
		return
	}
	p.downSince = time.Now()
	p.mu.Unlock()
	if p.dialer {
		p.net.wheel.Schedule(p.net.jitter(p.cfg.RedialMin), func() {
			go p.tryRedial(gen, p.cfg.RedialMin, time.Now().Add(p.cfg.GiveUpAfter))
		})
	} else {
		p.net.wheel.Schedule(p.cfg.GiveUpAfter, func() { p.giveupIfDown(gen) })
	}
}

// tryRedial attempts one reconnect; failures climb the backoff ladder
// on the timer wheel until the give-up deadline passes. Runs on its
// own goroutine (dials block).
func (p *RelPort) tryRedial(gen int, backoff time.Duration, deadline time.Time) {
	p.mu.Lock()
	stale := p.closed || p.closing || p.gen != gen || p.under != nil
	p.mu.Unlock()
	if stale {
		return
	}
	under, err := p.net.under.Dial(p.addr)
	if err == nil {
		p.net.reconnects.Inc()
		p.rebind(under, p.peerAckUnknown())
		return
	}
	if time.Now().After(deadline) {
		p.giveupIfDown(gen)
		return
	}
	next := backoff * 2
	if next > p.cfg.RedialMax {
		next = p.cfg.RedialMax
	}
	p.net.wheel.Schedule(p.net.jitter(next), func() {
		go p.tryRedial(gen, next, deadline)
	})
}

// peerAckUnknown: a re-dial does not yet know the peer's progress, so
// it trims nothing and lets the hello reply do it.
func (p *RelPort) peerAckUnknown() uint32 { return 0 }

// reset fails the channel promptly after the peer refused to resume
// it: unlike a giveup there is nothing to wait for — the peer is alive
// and has authoritatively disowned the identity.
func (p *RelPort) reset(gen int) {
	p.mu.Lock()
	if p.closed || p.gen != gen {
		p.mu.Unlock()
		return
	}
	p.closed = true
	under := p.under
	p.under = nil
	p.mu.Unlock()
	if under != nil {
		under.Close()
	}
	p.net.resets.Inc()
	p.finish()
}

// giveupIfDown abandons the channel if it has been continuously down
// since generation gen: recovery is bounded, degradation is not
// silent.
func (p *RelPort) giveupIfDown(gen int) {
	p.mu.Lock()
	if p.closed || p.closing || p.gen != gen || p.under != nil {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.net.giveups.Inc()
	p.finish()
}

// finish releases everything once the channel is over: the up queue
// closes (runners see portLost and synthesize teardown) and the
// listener registry forgets the identity.
func (p *RelPort) finish() {
	p.up.close()
	if p.lst != nil {
		p.lst.forget(p.id)
	}
}

// Recv implements Port.
func (p *RelPort) Recv() <-chan sig.Envelope { return p.up.stream() }

// RecvBatch implements BatchPort.
func (p *RelPort) RecvBatch(buf []sig.Envelope) (int, bool) {
	return p.up.popBatch(buf)
}

// lingerFactor bounds how long a closing port may keep its wire alive
// to finish delivering the unacked tail, in retransmit intervals.
const lingerFactor = 4

// Close implements Port: a local, clean teardown of the channel. The
// box runtime closes a port immediately after sending its teardown;
// if that tail is still unacked — it may have been dropped by the
// wire — the port lingers briefly, retransmitting, so a clean close
// under loss does not degrade into the peer's giveup.
func (p *RelPort) Close() error {
	p.mu.Lock()
	if p.closed || p.lingering {
		p.mu.Unlock()
		return nil
	}
	p.closing = true
	p.up.close() // the local box is done receiving either way
	if p.st.Len() > 0 && p.under != nil {
		p.lingering = true
		p.armRexmitLocked()
		p.net.wheel.Schedule(lingerFactor*p.cfg.RexmitInterval, p.closeNow)
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	p.closeNow()
	return nil
}

// closeNow completes a close: cut the wire, release everything.
func (p *RelPort) closeNow() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	under := p.under
	p.under = nil
	p.mu.Unlock()
	if under != nil {
		under.Close()
	}
	p.finish()
}

// Peer implements Port.
func (p *RelPort) Peer() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.under != nil {
		return p.under.Peer()
	}
	if p.addr != "" {
		return p.addr + " (reconnecting)"
	}
	return p.id + " (reconnecting)"
}

// ID returns the channel identity carried across reconnects; it names
// the channel in diagnostics and the chaos harness.
func (p *RelPort) ID() string { return p.id }
