// TCP transport: signaling channels over real sockets, using the
// framed binary encoding of package sig. Signaling is low-bandwidth
// but demands reliability, which is why the paper assumes TCP for
// inter-component channels (Section I).
package transport

import (
	"bufio"
	"io"
	"net"
	"sync"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

// SendQueueCap bounds each TCP port's send queue. A peer that stops
// reading cannot make the local process buffer without limit: once
// this many envelopes are queued unwritten, Send fails with ErrBacklog
// and the port is torn down, which the box runtime turns into the same
// channel-loss teardown as a broken socket. Set before creating ports.
var SendQueueCap = 4096

// countingWriter adds every written byte to a counter. The counter is
// nil-safe, so the wrapper costs one nil check when telemetry is off.
type countingWriter struct {
	w io.Writer
	c *telemetry.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(uint64(n))
	return n, err
}

// countingReader adds every read byte to a counter.
type countingReader struct {
	r io.Reader
	c *telemetry.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(uint64(n))
	return n, err
}

// tcpPort adapts a net.Conn to the Port interface. Outgoing envelopes
// are queued (bounded by SendQueueCap) and written by a dedicated
// goroutine so Send never blocks on the socket; incoming frames are
// decoded by a reader goroutine. The writer drains the queue in
// batches through a buffered writer, so a burst of N envelopes costs
// one syscall, not N.
type tcpPort struct {
	conn net.Conn
	out  *queue // envelopes awaiting write to the socket
	in   *queue // envelopes decoded from the socket
	once sync.Once
	wg   sync.WaitGroup

	framesOut *telemetry.Counter
	framesIn  *telemetry.Counter
	wireOut   countingWriter
	wireIn    countingReader
}

// NewTCPPort wraps an established connection as a signaling-channel
// port.
func NewTCPPort(conn net.Conn) Port {
	p := &tcpPort{
		conn:      conn,
		out:       newQueue(telemetry.G(MetricSendQueueDepth), nil, SendQueueCap),
		in:        newQueue(telemetry.G(MetricQueueDepth), nil, 0),
		framesOut: telemetry.C(MetricFramesOut),
		framesIn:  telemetry.C(MetricFramesIn),
		wireOut:   countingWriter{w: conn, c: telemetry.C(MetricBytesOut)},
		wireIn:    countingReader{r: conn, c: telemetry.C(MetricBytesIn)},
	}
	p.wg.Add(2)
	go p.writer()
	go p.reader()
	return p
}

func (p *tcpPort) writer() {
	defer p.wg.Done()
	bw := bufio.NewWriter(p.wireOut)
	buf := make([]sig.Envelope, 64)
	for {
		n, ok := p.out.popBatch(buf)
		if !ok {
			break
		}
		for i := 0; i < n; i++ {
			if err := sig.WriteFrame(bw, buf[i]); err != nil {
				p.Close()
				return
			}
			p.framesOut.Inc()
		}
		if err := bw.Flush(); err != nil {
			p.Close()
			return
		}
	}
	bw.Flush()
	// Queue closed: half-close the write side if possible so the peer's
	// reader sees EOF after the last frame.
	if tc, ok := p.conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
}

func (p *tcpPort) reader() {
	defer p.wg.Done()
	// One FrameReader per connection so every frame decodes out of the
	// same reused length-prefix-sized buffer instead of allocating one
	// per frame. The decoded Envelope owns its strings/slices, so
	// reusing the frame buffer between iterations is safe.
	fr := sig.NewFrameReader(p.wireIn)
	for {
		e, err := fr.ReadFrame()
		if err != nil {
			p.in.close()
			return
		}
		p.framesIn.Inc()
		if p.in.push(e) != nil {
			return
		}
	}
}

func (p *tcpPort) Send(e sig.Envelope) error {
	err := p.out.push(e)
	if err == ErrBacklog {
		// The peer has stalled past the cap: fail the whole channel. The
		// runtime observes the port loss and synthesizes teardowns for the
		// tunnels that were using it, exactly as for a broken socket.
		telemetry.C(MetricBacklogDropped).Inc()
		p.Close()
	}
	return err
}

func (p *tcpPort) Recv() <-chan sig.Envelope { return p.in.stream() }

// RecvBatch implements BatchPort.
func (p *tcpPort) RecvBatch(buf []sig.Envelope) (int, bool) {
	return p.in.popBatch(buf)
}

func (p *tcpPort) Close() error {
	p.once.Do(func() {
		p.out.close()
		p.in.close()
		p.conn.Close()
	})
	return nil
}

func (p *tcpPort) Peer() string { return p.conn.RemoteAddr().String() }

// TCPNetwork implements Network over the operating system's TCP stack.
type TCPNetwork struct{}

type tcpListener struct {
	l net.Listener
}

// Listen implements Network. Use addr ":0" to bind an ephemeral port
// and read it back from Addr.
func (TCPNetwork) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Network.
func (TCPNetwork) Dial(addr string) (Port, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	telemetry.C(MetricDials).Inc()
	return NewTCPPort(conn), nil
}

func (l *tcpListener) Accept() (Port, error) {
	conn, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	telemetry.C(MetricAccepts).Inc()
	return NewTCPPort(conn), nil
}

func (l *tcpListener) Close() error { return l.l.Close() }

func (l *tcpListener) Addr() string { return l.l.Addr().String() }
