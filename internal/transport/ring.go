// SPSC ring ports: the cross-shard seam of the sharded box runtime.
//
// A ring port is one end of an in-process signaling channel whose
// receive side is a bounded single-producer/single-consumer ring
// (Vyukov sequence slots) drained *inline* by the owning runtime shard
// instead of a per-port pump goroutine. Delivery is edge-triggered:
// the producer raises one readiness notification (SetReady callback)
// when the ring goes empty→non-empty, the consumer drains with
// TryRecvBatch until empty, and the notification flag is re-armed on
// the way out. A port therefore costs no goroutine, no per-envelope
// channel handoff, and — in steady state — no lock on either side.
//
// The SPSC contract: exactly one goroutine sends on a given port
// (for runner-owned ports this is the owning shard loop) and exactly
// one drains it (the peer's shard loop, via the readiness callback).
// Sends never block: when the ring is momentarily full the envelope
// overflows into a mutex-guarded spill list that the consumer drains
// after the ring, preserving FIFO order (a producer that has spilled
// keeps spilling until the consumer has emptied the spill, so ring
// entries are always older than spill entries).
//
// Placement-agnosticism is the point: a runner's channel may be
// same-shard (the notification lands in the producer's own inbox),
// cross-shard (it lands in another shard's inbox), or remote TCP (a
// classic pump port) — the runner cannot tell, and the box above
// certainly cannot.
package transport

import (
	"sync"
	"sync/atomic"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

// ringCap is the per-direction ring capacity. Signaling channels carry
// a handful of envelopes per call phase, so the ring is small; bursts
// beyond it take the spill path rather than growing the footprint of
// the hundred thousand idle channels a loaded host holds.
const ringCap = 32

// ringSlot is one Vyukov sequence slot.
type ringSlot struct {
	seq atomic.Uint64
	env sig.Envelope
}

// spscRing is the receive side of one direction of a ring channel.
type spscRing struct {
	mask  uint64
	slots []ringSlot
	head  atomic.Uint64 // next index to pop; consumer-owned
	tail  atomic.Uint64 // next index to push; producer-owned

	mu     sync.Mutex
	spill  []sig.Envelope // FIFO overflow, always younger than ring content
	spillN atomic.Int64   // len(spill), readable without the lock
	closed atomic.Bool

	notified atomic.Bool            // an edge notification is outstanding
	ready    atomic.Pointer[func()] // consumer's readiness callback
	done     chan struct{}          // closed when the ring closes
}

func newSPSCRing(capacity int) *spscRing {
	// Round up to a power of two for mask indexing.
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &spscRing{mask: uint64(n - 1), slots: make([]ringSlot, n), done: make(chan struct{})}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// tryPush appends e if the ring has room. Producer goroutine only.
func (r *spscRing) tryPush(e sig.Envelope) bool {
	t := r.tail.Load()
	s := &r.slots[t&r.mask]
	if s.seq.Load() != t {
		return false // consumer has not freed this slot yet
	}
	s.env = e
	s.seq.Store(t + 1)
	r.tail.Store(t + 1)
	return true
}

// tryPop removes the oldest ring entry. Consumer goroutine only.
func (r *spscRing) tryPop() (sig.Envelope, bool) {
	h := r.head.Load()
	s := &r.slots[h&r.mask]
	if s.seq.Load() != h+1 {
		return sig.Envelope{}, false
	}
	e := s.env
	s.env = sig.Envelope{} // drop Meta references promptly
	s.seq.Store(h + uint64(len(r.slots)))
	r.head.Store(h + 1)
	return e, true
}

// nonEmpty reports whether data is pending. Consumer goroutine only
// (it reads the consumer-owned head).
func (r *spscRing) nonEmpty() bool {
	h := r.head.Load()
	return r.slots[h&r.mask].seq.Load() == h+1 || r.spillN.Load() > 0
}

// push enqueues e, spilling when the ring is full or a spill is
// already in progress (FIFO across the ring/spill boundary). Producer
// goroutine only.
func (r *spscRing) push(e sig.Envelope) error {
	if r.closed.Load() {
		return ErrClosed
	}
	if r.spillN.Load() == 0 && r.tryPush(e) {
		r.notify()
		return nil
	}
	r.mu.Lock()
	if r.closed.Load() {
		r.mu.Unlock()
		return ErrClosed
	}
	r.spill = append(r.spill, e)
	r.spillN.Store(int64(len(r.spill)))
	r.mu.Unlock()
	r.notify()
	return nil
}

// notify raises the edge notification if none is outstanding. It may
// run on the producer goroutine (push, close) or the consumer's
// (setReady catching up); the CAS makes duplicates harmless — an
// extra wake-up finds an empty ring and returns.
func (r *spscRing) notify() {
	if r.notified.CompareAndSwap(false, true) {
		if fn := r.ready.Load(); fn != nil {
			(*fn)()
		}
		// No callback registered yet: the flag stays raised and
		// setReady delivers the wake-up on registration.
	}
}

// setReady installs the consumer's readiness callback. If data, a
// close, or an undelivered notification is already pending, the
// callback fires immediately (on this goroutine). Consumer only.
func (r *spscRing) setReady(fn func()) {
	r.ready.Store(&fn)
	if r.notified.Load() || r.nonEmpty() || r.closed.Load() {
		r.notified.Store(true)
		fn()
	}
}

// tryRecvBatch moves up to len(buf) pending envelopes into buf without
// blocking. It returns (0, true) when the ring is empty but open —
// the notification edge has been re-armed, so the producer's next push
// wakes the consumer — and (0, false) once the ring is closed and
// fully drained. Consumer goroutine only.
func (r *spscRing) tryRecvBatch(buf []sig.Envelope) (int, bool) {
	for {
		n := 0
		for n < len(buf) {
			e, ok := r.tryPop()
			if !ok {
				break
			}
			buf[n] = e
			n++
		}
		if n < len(buf) && r.spillN.Load() > 0 {
			r.mu.Lock()
			k := copy(buf[n:], r.spill)
			rest := copy(r.spill, r.spill[k:])
			for i := rest; i < len(r.spill); i++ {
				r.spill[i] = sig.Envelope{}
			}
			r.spill = r.spill[:rest]
			r.spillN.Store(int64(rest))
			r.mu.Unlock()
			n += k
		}
		if n > 0 {
			return n, true
		}
		// Empty: disarm the edge, then re-check. Data that raced in is
		// either claimed by re-arming the flag ourselves (continue
		// draining) or the producer won the CAS and its notification
		// is already in flight (safe to report empty).
		r.notified.Store(false)
		if r.nonEmpty() {
			if r.notified.CompareAndSwap(false, true) {
				continue
			}
			return 0, true
		}
		if r.closed.Load() {
			if r.nonEmpty() {
				continue // late data slipped in before the close
			}
			return 0, false
		}
		return 0, true
	}
}

func (r *spscRing) close() {
	r.mu.Lock()
	if r.closed.Load() {
		r.mu.Unlock()
		return
	}
	r.closed.Store(true)
	r.mu.Unlock()
	close(r.done)
	r.notify()
}

// InlinePort is a Port whose receive side is drained inline by the
// consumer's scheduler instead of a pump goroutine. SetReady registers
// an edge-triggered readiness callback — invoked from the producer's
// goroutine whenever the receive side goes empty→non-empty (and on
// close), so it must be cheap and non-blocking (runtime shards post an
// inbox notification). TryRecvBatch never blocks; ok is false once the
// port is closed and drained. SetReady and Recv are mutually
// exclusive ways to consume a port.
type InlinePort interface {
	Port
	SetReady(fn func())
	TryRecvBatch(buf []sig.Envelope) (n int, ok bool)
}

// ringPort is one end of an SPSC ring channel.
type ringPort struct {
	peerName string
	recv     *spscRing // our receive side
	send     *spscRing // peer's receive side
	once     sync.Once

	framesOut *telemetry.Counter
	framesIn  *telemetry.Counter

	recvOnce sync.Once
	out      chan sig.Envelope
}

// RingPipe creates an in-memory SPSC ring channel and returns its two
// ports. Each end must be sent on by one goroutine and drained by one
// goroutine (see the package comment); box runners satisfy this by
// construction. aName and bName label the ends for diagnostics.
func RingPipe(aName, bName string) (Port, Port) {
	return ringPipe(aName, bName, ringCap)
}

func ringPipe(aName, bName string, capacity int) (Port, Port) {
	framesIn := telemetry.C(MetricFramesIn)
	framesOut := telemetry.C(MetricFramesOut)
	ra, rb := newSPSCRing(capacity), newSPSCRing(capacity)
	a := &ringPort{peerName: bName, recv: ra, send: rb, framesOut: framesOut, framesIn: framesIn}
	b := &ringPort{peerName: aName, recv: rb, send: ra, framesOut: framesOut, framesIn: framesIn}
	return a, b
}

func (p *ringPort) Send(e sig.Envelope) error {
	if err := p.send.push(e); err != nil {
		return err
	}
	p.framesOut.Inc()
	return nil
}

// SetReady implements InlinePort.
func (p *ringPort) SetReady(fn func()) { p.recv.setReady(fn) }

// TryRecvBatch implements InlinePort.
func (p *ringPort) TryRecvBatch(buf []sig.Envelope) (int, bool) {
	n, ok := p.recv.tryRecvBatch(buf)
	if n > 0 {
		p.framesIn.Add(uint64(n))
	}
	return n, ok
}

// Recv is the channel-based compatibility path for consumers that do
// not drain inline; it starts one pump goroutine on first use. A port
// must be consumed through either Recv or SetReady/TryRecvBatch, not
// both, and a Recv consumer must keep draining until the channel
// closes — envelopes already accepted by the ring are delivered, not
// dropped, so an abandoned reader strands the pump.
func (p *ringPort) Recv() <-chan sig.Envelope {
	p.recvOnce.Do(func() {
		p.out = make(chan sig.Envelope)
		wake := make(chan struct{}, 1)
		p.recv.setReady(func() {
			select {
			case wake <- struct{}{}:
			default:
			}
		})
		go p.recvPump(wake)
	})
	return p.out
}

func (p *ringPort) recvPump(wake chan struct{}) {
	defer close(p.out)
	var buf [16]sig.Envelope
	for {
		n, ok := p.recv.tryRecvBatch(buf[:])
		for i := 0; i < n; i++ {
			p.out <- buf[i]
			p.framesIn.Inc()
			buf[i] = sig.Envelope{}
		}
		if n == 0 {
			if !ok {
				return
			}
			select {
			case <-wake:
			case <-p.recv.done:
				// Final drain pass above via tryRecvBatch.
			}
		}
	}
}

func (p *ringPort) Close() error {
	p.once.Do(func() {
		p.send.close()
		p.recv.close()
	})
	return nil
}

func (p *ringPort) Peer() string { return p.peerName }
