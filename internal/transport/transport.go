// Package transport provides signaling channels between boxes: two-way,
// FIFO, and reliable (paper Section III-A). A typical signaling channel
// between two physical components is implemented by TCP; a typical
// signaling channel within a physical component is implemented by two
// software queues. Both implementations are provided here behind the
// same Port interface, together with a Network abstraction that lets
// box runtimes dial and listen uniformly.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

// ErrClosed reports use of a closed port, listener, or network.
var ErrClosed = errors.New("transport: closed")

// Telemetry instrument names exported by this package. queue_depth
// counts envelopes accepted by Send but not yet handed to a receiver
// (or written to a socket), across all queues in the process; its
// high-water mark is the visibility the unbounded queues otherwise
// lack — a slow reader shows up as a growing depth.
const (
	MetricFramesOut  = "transport.frames_out"
	MetricFramesIn   = "transport.frames_in"
	MetricBytesOut   = "transport.bytes_out"
	MetricBytesIn    = "transport.bytes_in"
	MetricQueueDepth = "transport.queue_depth"
	MetricDials      = "transport.dials"
	MetricAccepts    = "transport.accepts"
)

// Port is one end of a signaling channel. Sends never block
// indefinitely: the channel queues are unbounded, preserving the FIFO
// reliable abstraction boxes are written against.
type Port interface {
	// Send queues an envelope for the far end.
	Send(e sig.Envelope) error
	// Recv returns the stream of envelopes from the far end. The
	// channel is closed when the port closes.
	Recv() <-chan sig.Envelope
	// Close tears the signaling channel down. It is idempotent.
	Close() error
	// Peer describes the far end for diagnostics.
	Peer() string
}

// Listener accepts incoming signaling channels.
type Listener interface {
	// Accept blocks until a new channel arrives or the listener closes.
	Accept() (Port, error)
	// Close stops accepting. It is idempotent.
	Close() error
	// Addr returns the listening address.
	Addr() string
}

// Network abstracts channel establishment so the same box runtime runs
// over in-memory queues or TCP.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Port, error)
}

// queue is an unbounded FIFO feeding a receive channel. Every queue
// tracks its occupancy in the process-wide queue-depth gauge; deliver,
// if non-nil, counts envelopes actually handed to the receiver.
type queue struct {
	mu     sync.Mutex
	items  []sig.Envelope
	notify chan struct{}
	out    chan sig.Envelope
	closed bool
	done   chan struct{}

	depth   *telemetry.Gauge
	deliver *telemetry.Counter
}

func newQueue(deliver *telemetry.Counter) *queue {
	q := &queue{
		notify:  make(chan struct{}, 1),
		out:     make(chan sig.Envelope),
		done:    make(chan struct{}),
		depth:   telemetry.G(MetricQueueDepth),
		deliver: deliver,
	}
	go q.pump()
	return q
}

func (q *queue) push(e sig.Envelope) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	q.items = append(q.items, e)
	q.mu.Unlock()
	q.depth.Inc()
	select {
	case q.notify <- struct{}{}:
	default:
	}
	return nil
}

func (q *queue) pump() {
	defer close(q.out)
	for {
		q.mu.Lock()
		for len(q.items) == 0 {
			closed := q.closed
			q.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-q.notify:
			case <-q.done:
			}
			q.mu.Lock()
		}
		e := q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()
		select {
		case q.out <- e:
			q.deliver.Inc()
		case <-q.done:
			// Receiver gone; drain silently until close.
		}
		q.depth.Dec()
	}
}

func (q *queue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.done)
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// memPort is one end of an in-memory signaling channel.
type memPort struct {
	peerName  string
	sendTo    *queue // far end's receive queue
	recvFrom  *queue // our receive queue
	closeFar  func()
	once      sync.Once
	framesOut *telemetry.Counter
}

// Pipe creates an in-memory signaling channel and returns its two
// ports. aName and bName label the ends for diagnostics.
func Pipe(aName, bName string) (Port, Port) {
	framesIn := telemetry.C(MetricFramesIn)
	framesOut := telemetry.C(MetricFramesOut)
	qa, qb := newQueue(framesIn), newQueue(framesIn)
	a := &memPort{peerName: bName, sendTo: qb, recvFrom: qa, framesOut: framesOut}
	b := &memPort{peerName: aName, sendTo: qa, recvFrom: qb, framesOut: framesOut}
	a.closeFar = func() { qb.close() }
	b.closeFar = func() { qa.close() }
	return a, b
}

func (p *memPort) Send(e sig.Envelope) error {
	p.framesOut.Inc()
	return p.sendTo.push(e)
}

func (p *memPort) Recv() <-chan sig.Envelope { return p.recvFrom.out }

func (p *memPort) Close() error {
	p.once.Do(func() {
		p.recvFrom.close()
		p.closeFar()
	})
	return nil
}

func (p *memPort) Peer() string { return p.peerName }

// MemNetwork is an in-process Network: addresses are plain strings in a
// shared registry.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMemNetwork creates an empty in-process network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: map[string]*memListener{}}
}

type memListener struct {
	addr   string
	net    *MemNetwork
	accept chan Port
	once   sync.Once
	done   chan struct{}
}

// Listen implements Network.
func (n *MemNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &memListener{addr: addr, net: n, accept: make(chan Port, 16), done: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *MemNetwork) Dial(addr string) (Port, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	near, far := Pipe(addr, "dialer")
	select {
	case l.accept <- far:
		telemetry.C(MetricDials).Inc()
		return near, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Accept() (Port, error) {
	select {
	case p, ok := <-l.accept:
		if !ok {
			return nil, ErrClosed
		}
		telemetry.C(MetricAccepts).Inc()
		return p, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }
