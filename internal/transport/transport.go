// Package transport provides signaling channels between boxes: two-way,
// FIFO, and reliable (paper Section III-A). A typical signaling channel
// between two physical components is implemented by TCP; a typical
// signaling channel within a physical component is implemented by two
// software queues. Both implementations are provided here behind the
// same Port interface, together with a Network abstraction that lets
// box runtimes dial and listen uniformly.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

// ErrClosed reports use of a closed port, listener, or network.
var ErrClosed = errors.New("transport: closed")

// ErrBacklog reports a send rejected because the port's bounded send
// queue is full: the peer has stalled past the cap and the port is
// being failed rather than buffering without limit.
var ErrBacklog = errors.New("transport: send queue full")

// Telemetry instrument names exported by this package. queue_depth
// counts envelopes accepted by Send but not yet handed to a receiver,
// across all receive queues in the process; its high-water mark is the
// visibility the unbounded queues otherwise lack — a slow reader shows
// up as a growing depth. send_queue_depth is the same accounting for
// the bounded TCP send queues (envelopes accepted but not yet written
// to a socket).
const (
	MetricFramesOut      = "transport.frames_out"
	MetricFramesIn       = "transport.frames_in"
	MetricBytesOut       = "transport.bytes_out"
	MetricBytesIn        = "transport.bytes_in"
	MetricQueueDepth     = "transport.queue_depth"
	MetricSendQueueDepth = "transport.send_queue_depth"
	MetricDials          = "transport.dials"
	MetricAccepts        = "transport.accepts"
	// MetricBacklogDropped counts envelopes discarded because a bounded
	// send queue was full when Send was called — the frames that a
	// backlog teardown loses, previously dropped without a trace.
	MetricBacklogDropped = "transport.backlog_dropped"
	// MetricFaultsInjected counts faults injected by a FaultNetwork:
	// drops, duplications, delays, reorder holds, and link severs.
	MetricFaultsInjected = "transport.faults_injected"
	// MetricReconnects counts successful re-dials by the reliable layer
	// after an underlying channel died.
	MetricReconnects = "transport.reconnects"
	// MetricGiveups counts reliable channels abandoned after the bounded
	// recovery budget was exhausted; each one surfaces to the box
	// runtime as a channel loss and drives the path's slots to closed.
	MetricGiveups = "path.giveups"
	// MetricResets counts reliable channels failed fast by a rel/reset:
	// the dialer tried to resume a channel whose identity the acceptor
	// no longer knows (the accepting process restarted and lost its
	// channel state). Unlike a giveup, a reset is a prompt, clean
	// failure — the peer is alive, only the channel is unrecoverable.
	MetricResets = "transport.resets"
)

// Port is one end of a signaling channel. Sends never block: receive
// queues are unbounded, preserving the FIFO reliable abstraction boxes
// are written against (TCP send queues are bounded and fail the port
// rather than block, see ErrBacklog).
type Port interface {
	// Send queues an envelope for the far end.
	Send(e sig.Envelope) error
	// Recv returns the stream of envelopes from the far end. The
	// channel is closed when the port closes.
	Recv() <-chan sig.Envelope
	// Close tears the signaling channel down. It is idempotent.
	Close() error
	// Peer describes the far end for diagnostics.
	Peer() string
}

// BatchPort is implemented by ports that can hand over a burst of
// queued envelopes in one call, without a per-envelope channel
// handoff. RecvBatch blocks until at least one envelope is available,
// fills buf, and returns the count; ok is false once the port is
// closed and drained. A port must be drained through either Recv or
// RecvBatch, not both.
type BatchPort interface {
	RecvBatch(buf []sig.Envelope) (n int, ok bool)
}

// Listener accepts incoming signaling channels.
type Listener interface {
	// Accept blocks until a new channel arrives or the listener closes.
	Accept() (Port, error)
	// Close stops accepting. It is idempotent.
	Close() error
	// Addr returns the listening address.
	Addr() string
}

// Network abstracts channel establishment so the same box runtime runs
// over in-memory queues or TCP.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Port, error)
}

// queue is a FIFO of envelopes with two consumption modes: popBatch
// (used by box runners and the TCP writer, no goroutine) and a lazily
// started channel pump (the Recv compatibility path). Every queue
// tracks its occupancy in a process-wide depth gauge; deliver, if
// non-nil, counts envelopes actually handed to the consumer. max, if
// positive, bounds the queue: push fails with ErrBacklog when full.
type queue struct {
	mu     sync.Mutex
	cond   sync.Cond
	items  []sig.Envelope
	closed bool
	max    int

	outOnce sync.Once
	out     chan sig.Envelope
	done    chan struct{}

	depth   *telemetry.Gauge
	deliver *telemetry.Counter
}

func newQueue(depth *telemetry.Gauge, deliver *telemetry.Counter, max int) *queue {
	q := &queue{
		done:    make(chan struct{}),
		max:     max,
		depth:   depth,
		deliver: deliver,
	}
	q.cond.L = &q.mu
	return q
}

func (q *queue) push(e sig.Envelope) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	if q.max > 0 && len(q.items) >= q.max {
		q.mu.Unlock()
		return ErrBacklog
	}
	q.items = append(q.items, e)
	if len(q.items) == 1 {
		q.cond.Signal()
	}
	q.mu.Unlock()
	q.depth.Inc()
	return nil
}

// popBatch blocks until the queue is non-empty or closed, then moves
// up to len(buf) envelopes into buf. ok is false only when the queue
// is closed and fully drained.
func (q *queue) popBatch(buf []sig.Envelope) (int, bool) {
	q.mu.Lock()
	for len(q.items) == 0 {
		if q.closed {
			q.mu.Unlock()
			return 0, false
		}
		q.cond.Wait()
	}
	n := copy(buf, q.items)
	// Slide the tail forward so the backing array is reused instead of
	// leaking consumed heads.
	rest := copy(q.items, q.items[n:])
	for i := rest; i < len(q.items); i++ {
		q.items[i] = sig.Envelope{}
	}
	q.items = q.items[:rest]
	q.mu.Unlock()
	q.depth.Add(int64(-n))
	q.deliver.Add(uint64(n))
	return n, true
}

// stream returns the queue's receive channel, starting the pump
// goroutine on first use. Queues drained via popBatch never pay for
// the pump.
func (q *queue) stream() <-chan sig.Envelope {
	q.outOnce.Do(func() {
		q.out = make(chan sig.Envelope)
		go q.pump()
	})
	return q.out
}

func (q *queue) pump() {
	defer close(q.out)
	var buf [1]sig.Envelope
	for {
		q.mu.Lock()
		for len(q.items) == 0 {
			if q.closed {
				q.mu.Unlock()
				return
			}
			q.cond.Wait()
		}
		buf[0] = q.items[0]
		rest := copy(q.items, q.items[1:])
		q.items[rest] = sig.Envelope{}
		q.items = q.items[:rest]
		q.mu.Unlock()
		select {
		case q.out <- buf[0]:
			q.deliver.Inc()
		case <-q.done:
			// Receiver gone; drain silently until close.
		}
		q.depth.Dec()
	}
}

func (q *queue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	close(q.done)
}

// memPort is one end of an in-memory signaling channel.
type memPort struct {
	peerName  string
	sendTo    *queue // far end's receive queue
	recvFrom  *queue // our receive queue
	closeFar  func()
	once      sync.Once
	framesOut *telemetry.Counter
}

// Pipe creates an in-memory signaling channel and returns its two
// ports. aName and bName label the ends for diagnostics.
func Pipe(aName, bName string) (Port, Port) {
	framesIn := telemetry.C(MetricFramesIn)
	framesOut := telemetry.C(MetricFramesOut)
	depth := telemetry.G(MetricQueueDepth)
	qa, qb := newQueue(depth, framesIn, 0), newQueue(depth, framesIn, 0)
	a := &memPort{peerName: bName, sendTo: qb, recvFrom: qa, framesOut: framesOut}
	b := &memPort{peerName: aName, sendTo: qa, recvFrom: qb, framesOut: framesOut}
	a.closeFar = func() { qb.close() }
	b.closeFar = func() { qa.close() }
	return a, b
}

func (p *memPort) Send(e sig.Envelope) error {
	p.framesOut.Inc()
	return p.sendTo.push(e)
}

func (p *memPort) Recv() <-chan sig.Envelope { return p.recvFrom.stream() }

// RecvBatch implements BatchPort.
func (p *memPort) RecvBatch(buf []sig.Envelope) (int, bool) {
	return p.recvFrom.popBatch(buf)
}

func (p *memPort) Close() error {
	p.once.Do(func() {
		p.recvFrom.close()
		p.closeFar()
	})
	return nil
}

func (p *memPort) Peer() string { return p.peerName }

// memStripeCount is the number of independent listener-registry
// stripes in a MemNetwork. With one registry mutex, every Dial and
// Listen in the process serializes on a single lock — the mem fabric
// becomes the bottleneck the moment runners are sharded across cores.
// Striping by address hash keeps dial storms from different shards on
// different locks.
const memStripeCount = 16

type memStripe struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// MemNetwork is an in-process Network: addresses are plain strings in
// a lock-striped registry. With ring ports enabled (NewRingMemNetwork)
// dialed channels are SPSC ring channels drained inline by box
// runners; otherwise they are classic queue pipes.
type MemNetwork struct {
	rings   bool
	stripes [memStripeCount]memStripe
}

// NewMemNetwork creates an empty in-process network with queue-pipe
// channels.
func NewMemNetwork() *MemNetwork {
	n := &MemNetwork{}
	for i := range n.stripes {
		n.stripes[i].listeners = map[string]*memListener{}
	}
	return n
}

// NewRingMemNetwork creates an in-process network whose channels are
// SPSC ring ports (see RingPipe): no pump goroutine per port, inline
// shard draining. Each port end must have a single sending goroutine —
// true for channels owned by box runners, not necessarily for layered
// transports (the reliability layer also sends from timer callbacks),
// which should stay on NewMemNetwork.
func NewRingMemNetwork() *MemNetwork {
	n := NewMemNetwork()
	n.rings = true
	return n
}

// stripe maps an address to its registry stripe (FNV-1a).
func (n *MemNetwork) stripe(addr string) *memStripe {
	h := uint32(2166136261)
	for i := 0; i < len(addr); i++ {
		h ^= uint32(addr[i])
		h *= 16777619
	}
	return &n.stripes[h%memStripeCount]
}

type memListener struct {
	addr   string
	stripe *memStripe
	accept chan Port
	once   sync.Once
	done   chan struct{}
}

// Listen implements Network.
func (n *MemNetwork) Listen(addr string) (Listener, error) {
	s := n.stripe(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &memListener{addr: addr, stripe: s, accept: make(chan Port, 16), done: make(chan struct{})}
	s.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *MemNetwork) Dial(addr string) (Port, error) {
	s := n.stripe(addr)
	s.mu.Lock()
	l, ok := s.listeners[addr]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	var near, far Port
	if n.rings {
		near, far = RingPipe(addr, "dialer")
	} else {
		near, far = Pipe(addr, "dialer")
	}
	select {
	case l.accept <- far:
		telemetry.C(MetricDials).Inc()
		return near, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Accept() (Port, error) {
	select {
	case p, ok := <-l.accept:
		if !ok {
			return nil, ErrClosed
		}
		telemetry.C(MetricAccepts).Inc()
		return p, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.stripe.mu.Lock()
		delete(l.stripe.listeners, l.addr)
		l.stripe.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }
