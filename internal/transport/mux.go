// Inter-shard tunnel multiplexing. A Mux carries many logical
// signaling channels over one carrier channel per remote peer, so a
// fleet of shard processes needs O(shards²) TCP connections rather
// than O(paths): every cross-shard box channel is a lightweight
// virtual channel (a channel id plus two queues) riding a shared
// carrier.
//
// The carrier is expected to be a reliable channel — in the cluster
// runtime it is RelNetwork over TCPNetwork — so the mux inherits FIFO
// reliable delivery per carrier and, transitively, per logical
// channel. A carrier outage shorter than the reliable layer's give-up
// budget is invisible here: the rel layer retransmits and re-dials
// underneath, and every logical channel rides out the blip. A carrier
// that dies for real (give-up, rel/reset after the peer lost its
// channel state, or explicit invalidation when a restarted shard comes
// back on a new address) takes all its logical channels down at once;
// each surfaces to its box runner as an ordinary port loss.
//
// Wire protocol, all MetaApp envelopes on the carrier:
//
//	mux/open  c=<cid> to=<logical>   open channel cid toward listener
//	mux/data  c=<cid> b=<bytes>      one envelope, binary-encoded
//	mux/close c=<cid>                either side hangs up cid
//
// Only the side that dialed a carrier opens logical channels on it
// (each shard dials its own carrier toward every peer), so channel ids
// are allocated by one side per carrier and cannot collide.
package transport

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

// Mux control envelope application names, never delivered to boxes.
const (
	muxOpenApp  = "mux/open"
	muxDataApp  = "mux/data"
	muxCloseApp = "mux/close"
)

// Telemetry instrument names exported by the mux.
const (
	// MetricMuxChannels counts logical channels opened over carriers
	// (both directions of every cross-shard box channel).
	MetricMuxChannels = "transport.mux_channels"
	// MetricMuxDrops counts carrier envelopes that could not be routed:
	// data or close for an unknown channel id (the channel raced a
	// carrier death), or an open for a logical listener that does not
	// exist on this peer.
	MetricMuxDrops = "transport.mux_drops"
)

// Mux multiplexes logical signaling channels over per-peer carrier
// channels. One Mux serves both roles: it accepts carriers from peers
// (ListenCarrier + Listen) and dials carriers toward peers (Dial).
type Mux struct {
	under Network

	mu        sync.Mutex
	closed    bool
	carriers  map[string]*muxCarrier // dialed carriers by remote addr
	listeners map[string]*muxListener
	lst       Listener // carrier accept listener, nil until ListenCarrier
	nextCID   atomic.Uint64

	channels *telemetry.Counter
	drops    *telemetry.Counter
}

// NewMux creates a mux over the carrier network. under should provide
// reliable channels (RelNetwork in production); the mux adds no
// retransmission of its own.
func NewMux(under Network) *Mux {
	return &Mux{
		under:     under,
		carriers:  map[string]*muxCarrier{},
		listeners: map[string]*muxListener{},
		channels:  telemetry.C(MetricMuxChannels),
		drops:     telemetry.C(MetricMuxDrops),
	}
}

// ListenCarrier starts accepting carrier channels from peers at addr
// and returns the bound address (useful with ":0").
func (m *Mux) ListenCarrier(addr string) (string, error) {
	l, err := m.under.Listen(addr)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		l.Close()
		return "", ErrClosed
	}
	m.lst = l
	m.mu.Unlock()
	go func() {
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			c := newMuxCarrier(m, "", p)
			go c.serve()
		}
	}()
	return l.Addr(), nil
}

// Listen registers a logical listener: peers dialing this name over
// any carrier reach it.
func (m *Mux) Listen(logical string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if _, ok := m.listeners[logical]; ok {
		return nil, fmt.Errorf("transport: mux: logical address %q already in use", logical)
	}
	l := &muxListener{m: m, name: logical, accept: make(chan Port, 256), done: make(chan struct{})}
	m.listeners[logical] = l
	return l, nil
}

// Dial opens a logical channel toward the listener named logical on
// the peer whose carrier address is carrierAddr, dialing the carrier
// itself on first use. The open is optimistic: if the peer has no such
// listener it hangs the channel up, which the caller observes as a
// port loss.
func (m *Mux) Dial(carrierAddr, logical string) (Port, error) {
	c, err := m.carrier(carrierAddr)
	if err != nil {
		return nil, err
	}
	cid := m.nextCID.Add(1)
	p := newMuxPort(c, cid, carrierAddr+"/"+logical)
	if !c.register(cid, p) {
		return nil, ErrClosed
	}
	err = c.port.Send(sig.Envelope{Meta: &sig.Meta{
		Kind: sig.MetaApp,
		App:  muxOpenApp,
		Attrs: sig.NewAttrs(
			"c", strconv.FormatUint(cid, 10),
			"to", logical,
		),
	}})
	if err != nil {
		c.unregister(cid)
		return nil, err
	}
	m.channels.Inc()
	return p, nil
}

// carrier returns the dialed carrier toward addr, establishing it on
// first use.
func (m *Mux) carrier(addr string) (*muxCarrier, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := m.carriers[addr]; ok {
		m.mu.Unlock()
		return c, nil
	}
	m.mu.Unlock()

	// Dial outside the lock (it blocks); racers may both dial, the
	// loser's carrier is closed.
	p, err := m.under.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := newMuxCarrier(m, addr, p)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		p.Close()
		return nil, ErrClosed
	}
	if prior, ok := m.carriers[addr]; ok {
		m.mu.Unlock()
		p.Close()
		return prior, nil
	}
	m.carriers[addr] = c
	m.mu.Unlock()
	go c.serve()
	return c, nil
}

// Invalidate tears down the dialed carrier toward addr, failing every
// logical channel on it. The cluster router calls it when a restarted
// shard reappears on a different address: redials climbing the backoff
// ladder toward the dead address would otherwise pin those channels
// down until the reliable layer's give-up budget expires.
func (m *Mux) Invalidate(addr string) {
	m.mu.Lock()
	c := m.carriers[addr]
	delete(m.carriers, addr)
	m.mu.Unlock()
	if c != nil {
		c.close()
	}
}

// Close tears the mux down: the carrier listener, every carrier, and
// every logical channel.
func (m *Mux) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	lst := m.lst
	carriers := make([]*muxCarrier, 0, len(m.carriers))
	for _, c := range m.carriers {
		carriers = append(carriers, c)
	}
	m.carriers = map[string]*muxCarrier{}
	listeners := make([]*muxListener, 0, len(m.listeners))
	for _, l := range m.listeners {
		listeners = append(listeners, l)
	}
	m.mu.Unlock()
	if lst != nil {
		lst.Close()
	}
	for _, c := range carriers {
		c.close()
	}
	for _, l := range listeners {
		l.Close()
	}
}

func (m *Mux) lookupListener(name string) *muxListener {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.listeners[name]
}

func (m *Mux) forgetListener(name string) {
	m.mu.Lock()
	delete(m.listeners, name)
	m.mu.Unlock()
}

// forgetCarrier drops a dead dialed carrier from the table so the next
// Dial establishes a fresh one.
func (m *Mux) forgetCarrier(c *muxCarrier) {
	if c.addr == "" {
		return // accepted carrier, never in the table
	}
	m.mu.Lock()
	if m.carriers[c.addr] == c {
		delete(m.carriers, c.addr)
	}
	m.mu.Unlock()
}

// muxListener hands accepted logical channels to the box runtime.
type muxListener struct {
	m      *Mux
	name   string
	accept chan Port
	done   chan struct{}
	once   sync.Once
}

func (l *muxListener) Accept() (Port, error) {
	select {
	case p, ok := <-l.accept:
		if !ok {
			return nil, ErrClosed
		}
		return p, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *muxListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.m.forgetListener(l.name)
	})
	return nil
}

func (l *muxListener) Addr() string { return l.name }

// muxCarrier is one carrier channel and the logical channels riding
// it. addr is the remote carrier address for dialed carriers, "" for
// accepted ones.
type muxCarrier struct {
	m    *Mux
	addr string
	port Port

	mu     sync.Mutex
	ports  map[uint64]*muxPort
	closed bool
}

func newMuxCarrier(m *Mux, addr string, p Port) *muxCarrier {
	return &muxCarrier{m: m, addr: addr, port: p, ports: map[uint64]*muxPort{}}
}

func (c *muxCarrier) register(cid uint64, p *muxPort) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.ports[cid] = p
	return true
}

func (c *muxCarrier) unregister(cid uint64) {
	c.mu.Lock()
	delete(c.ports, cid)
	c.mu.Unlock()
}

func (c *muxCarrier) lookup(cid uint64) *muxPort {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ports[cid]
}

// serve drains the carrier, routing control and data to logical
// channels, until the carrier dies; then every logical channel on it
// dies too.
func (c *muxCarrier) serve() {
	if bp, ok := c.port.(BatchPort); ok {
		buf := make([]sig.Envelope, 64)
		for {
			n, ok := bp.RecvBatch(buf)
			if !ok {
				break
			}
			for i := 0; i < n; i++ {
				c.handle(buf[i])
			}
		}
	} else {
		for e := range c.port.Recv() {
			c.handle(e)
		}
	}
	c.close()
}

// handle routes one carrier envelope.
func (c *muxCarrier) handle(e sig.Envelope) {
	m := e.Meta
	if m == nil || m.Kind != sig.MetaApp {
		e.Release()
		c.m.drops.Inc()
		return
	}
	switch m.App {
	case muxOpenApp:
		cid, _ := strconv.ParseUint(m.Get("c"), 10, 64)
		logical := m.Get("to")
		e.Release()
		l := c.m.lookupListener(logical)
		if l == nil || cid == 0 {
			c.m.drops.Inc()
			c.sendClose(cid)
			return
		}
		p := newMuxPort(c, cid, "peer/"+logical)
		if !c.register(cid, p) {
			return
		}
		c.m.channels.Inc()
		select {
		case l.accept <- p:
		default:
			// Accept backlog full: refuse rather than stall the carrier —
			// every other logical channel on it would head-of-line block.
			c.unregister(cid)
			c.m.drops.Inc()
			c.sendClose(cid)
		}
	case muxDataApp:
		cid, _ := strconv.ParseUint(m.Get("c"), 10, 64)
		blob := m.Get("b")
		p := c.lookup(cid)
		if p == nil {
			e.Release()
			c.m.drops.Inc()
			return
		}
		inner, err := sig.UnmarshalEnvelope([]byte(blob))
		e.Release()
		if err != nil {
			c.m.drops.Inc()
			return
		}
		p.up.push(inner)
	case muxCloseApp:
		cid, _ := strconv.ParseUint(m.Get("c"), 10, 64)
		e.Release()
		if p := c.lookup(cid); p != nil {
			c.unregister(cid)
			p.up.close()
		}
	default:
		e.Release()
		c.m.drops.Inc()
	}
}

// sendClose tells the peer cid is dead (best-effort).
func (c *muxCarrier) sendClose(cid uint64) {
	c.port.Send(sig.Envelope{Meta: &sig.Meta{
		Kind:  sig.MetaApp,
		App:   muxCloseApp,
		Attrs: sig.NewAttrs("c", strconv.FormatUint(cid, 10)),
	}})
}

// close tears the carrier down and fails every logical channel on it.
func (c *muxCarrier) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	ports := make([]*muxPort, 0, len(c.ports))
	for _, p := range c.ports {
		ports = append(ports, p)
	}
	c.ports = map[uint64]*muxPort{}
	c.mu.Unlock()
	c.port.Close()
	for _, p := range ports {
		p.up.close()
	}
	c.m.forgetCarrier(c)
}

// muxPort is one end of a logical channel: envelopes are binary-framed
// into mux/data envelopes on the carrier on the way out, and arrive
// in order on the up queue on the way in.
type muxPort struct {
	c      *muxCarrier
	cid    uint64
	cidStr string
	peer   string
	up     *queue
	once   sync.Once
}

func newMuxPort(c *muxCarrier, cid uint64, peer string) *muxPort {
	return &muxPort{
		c:      c,
		cid:    cid,
		cidStr: strconv.FormatUint(cid, 10),
		peer:   peer,
		up:     newQueue(telemetry.G(MetricQueueDepth), nil, 0),
	}
}

// Send implements Port: the envelope is encoded into a carrier data
// envelope. The carrier's reliable layer owns retransmission.
func (p *muxPort) Send(e sig.Envelope) error {
	buf, err := e.AppendBinary(nil)
	if err != nil {
		return err
	}
	return p.c.port.Send(sig.Envelope{Meta: &sig.Meta{
		Kind: sig.MetaApp,
		App:  muxDataApp,
		Attrs: sig.NewAttrs(
			"b", string(buf),
			"c", p.cidStr,
		),
	}})
}

func (p *muxPort) Recv() <-chan sig.Envelope { return p.up.stream() }

// RecvBatch implements BatchPort.
func (p *muxPort) RecvBatch(buf []sig.Envelope) (int, bool) {
	return p.up.popBatch(buf)
}

func (p *muxPort) Close() error {
	p.once.Do(func() {
		p.c.unregister(p.cid)
		p.up.close()
		p.c.sendClose(p.cid)
	})
	return nil
}

func (p *muxPort) Peer() string { return p.peer }
