package transport

import (
	"testing"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

// TestFaultNetworkPassthrough: the zero profile is a transparent
// wrapper — everything sent arrives, in order.
func TestFaultNetworkPassthrough(t *testing.T) {
	n := NewFaultNetwork(NewMemNetwork(), FaultProfile{})
	defer n.Stop()
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	acceptCh := make(chan Port, 1)
	go func() {
		p, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		acceptCh <- p
	}()
	dialer, err := n.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	accepted := <-acceptCh
	for i := 0; i < 50; i++ {
		if err := dialer.Send(sig.Envelope{Tunnel: i, Sig: sig.Close()}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		e := <-accepted.Recv()
		if e.Tunnel != i {
			t.Fatalf("envelope %d arrived as tunnel %d", i, e.Tunnel)
		}
	}
	dialer.Close()
	accepted.Close()
}

// TestFaultNetworkDropsDeterministically: with a fixed seed, the set
// of surviving envelopes is identical across runs, and the fault
// counter records the losses.
func TestFaultNetworkDropsDeterministically(t *testing.T) {
	run := func() ([]int, uint64) {
		reg := telemetry.NewRegistry()
		telemetry.SetDefault(reg)
		defer telemetry.SetDefault(nil)
		n := NewFaultNetwork(NewMemNetwork(), FaultProfile{Seed: 7, DropRate: 0.3})
		defer n.Stop()
		l, _ := n.Listen("a")
		go func() {
			p, err := l.Accept()
			if err != nil {
				return
			}
			p.Close()
		}()
		dialer, err := n.Dial("a")
		if err != nil {
			t.Fatal(err)
		}
		// Talk to ourselves through the wrapper internals: wrap a pipe
		// directly so the receive side is deterministic too.
		_ = dialer
		near, far := Pipe("a", "b")
		fp := n.wrap(near)
		const total = 200
		for i := 0; i < total; i++ {
			fp.Send(sig.Envelope{Tunnel: i, Sig: sig.Close()})
		}
		fp.Close()
		var got []int
		buf := make([]sig.Envelope, 64)
		for {
			c, ok := far.(BatchPort).RecvBatch(buf)
			if !ok {
				break
			}
			for _, e := range buf[:c] {
				got = append(got, e.Tunnel)
			}
		}
		return got, reg.Counter(MetricFaultsInjected).Value()
	}
	got1, faults1 := run()
	got2, faults2 := run()
	if len(got1) == 0 || len(got1) == 200 {
		t.Fatalf("drop rate 0.3 delivered %d of 200", len(got1))
	}
	if faults1 == 0 {
		t.Fatal("no faults counted")
	}
	if len(got1) != len(got2) || faults1 != faults2 {
		t.Fatalf("non-deterministic: %d/%d survivors, %d/%d faults",
			len(got1), len(got2), faults1, faults2)
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("survivor %d differs: %d vs %d", i, got1[i], got2[i])
		}
	}
}

// TestFaultNetworkDupAndReorder: duplication delivers envelopes twice;
// reordering swaps adjacent envelopes; the union of what arrives is
// still exactly what was sent.
func TestFaultNetworkDupAndReorder(t *testing.T) {
	n := NewFaultNetwork(NewMemNetwork(), FaultProfile{Seed: 3, DupRate: 0.2, ReorderRate: 0.2})
	defer n.Stop()
	near, far := Pipe("a", "b")
	fp := n.wrap(near)
	const total = 300
	for i := 0; i < total; i++ {
		fp.Send(sig.Envelope{Tunnel: i, Sig: sig.Close()})
	}
	// Let reorder flush timers fire before closing the wire.
	time.Sleep(50 * time.Millisecond)
	fp.Close()
	counts := map[int]int{}
	arrived := 0
	buf := make([]sig.Envelope, 64)
	for {
		c, ok := far.(BatchPort).RecvBatch(buf)
		if !ok {
			break
		}
		for _, e := range buf[:c] {
			counts[e.Tunnel]++
			arrived++
		}
	}
	if arrived <= total {
		t.Fatalf("dup rate 0.2 delivered %d of %d sends", arrived, total)
	}
	for i := 0; i < total; i++ {
		if counts[i] < 1 || counts[i] > 2 {
			t.Fatalf("envelope %d arrived %d times", i, counts[i])
		}
	}
}

// TestFaultNetworkDelay: delayed envelopes still arrive.
func TestFaultNetworkDelay(t *testing.T) {
	n := NewFaultNetwork(NewMemNetwork(), FaultProfile{
		Seed: 11, DelayRate: 1.0, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond,
	})
	defer n.Stop()
	near, far := Pipe("a", "b")
	fp := n.wrap(near)
	const total = 20
	for i := 0; i < total; i++ {
		fp.Send(sig.Envelope{Tunnel: i, Sig: sig.Close()})
	}
	got := 0
	timeout := time.After(2 * time.Second)
	for got < total {
		select {
		case <-far.Recv():
			got++
		case <-timeout:
			t.Fatalf("only %d of %d delayed envelopes arrived", got, total)
		}
	}
	fp.Close()
}

// TestFaultNetworkSeverAndPartition: Sever closes live links and Dial
// fails during the partition window, then succeeds again.
func TestFaultNetworkSeverAndPartition(t *testing.T) {
	n := NewFaultNetwork(NewMemNetwork(), FaultProfile{PartitionFor: 100 * time.Millisecond})
	defer n.Stop()
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			_ = p
		}
	}()
	dialer, err := n.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	n.Sever()
	// The severed port's receive stream must close: the link is dead.
	select {
	case _, ok := <-dialer.Recv():
		if ok {
			t.Fatal("severed port delivered an envelope")
		}
	case <-time.After(time.Second):
		t.Fatal("severed port still open")
	}
	if _, err := n.Dial("a"); err == nil {
		t.Fatal("dial succeeded during partition window")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := n.Dial("a"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partition window never ended")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
