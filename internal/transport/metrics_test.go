package transport

import (
	"testing"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

func awaitGauge(t *testing.T, g *telemetry.Gauge, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if g.Value() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth = %d, want %d", g.Value(), want)
}

// TestQueueDepthGauge pins the unbounded queue's visibility contract:
// the depth gauge rises synchronously with Send (push), falls as the
// receiver drains (pop), and the high-water mark keeps the peak. This
// is the regression guard for slow readers growing memory invisibly.
func TestQueueDepthGauge(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)

	a, b := Pipe("a", "b")
	defer a.Close()
	defer b.Close()
	depth := reg.Gauge(MetricQueueDepth)

	const n = 8
	for i := 0; i < n; i++ {
		if err := a.Send(sig.Envelope{Tunnel: i, Sig: sig.Close()}); err != nil {
			t.Fatal(err)
		}
	}
	// No receiver yet: every envelope is still queued (or parked in the
	// pump awaiting a receiver), so the gauge holds the full backlog.
	if got := depth.Value(); got != n {
		t.Fatalf("after %d unread sends: depth = %d", n, got)
	}
	if hwm := depth.HighWater(); hwm < n {
		t.Fatalf("high-water mark = %d, want >= %d", hwm, n)
	}

	for i := 0; i < n; i++ {
		<-b.Recv()
	}
	awaitGauge(t, depth, 0)

	if got := reg.Counter(MetricFramesOut).Value(); got != n {
		t.Fatalf("frames_out = %d, want %d", got, n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter(MetricFramesIn).Value() != n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := reg.Counter(MetricFramesIn).Value(); got != n {
		t.Fatalf("frames_in = %d, want %d", got, n)
	}
	if hwm := depth.HighWater(); hwm < n {
		t.Fatalf("high-water mark lost: %d", hwm)
	}
}

// TestDialAcceptCounters checks channel-establishment accounting on
// the in-memory network.
func TestDialAcceptCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)

	n := NewMemNetwork()
	l, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		p, err := n.Dial("svc")
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		q, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		defer q.Close()
	}
	if d := reg.Counter(MetricDials).Value(); d != 3 {
		t.Fatalf("dials = %d, want 3", d)
	}
	if a := reg.Counter(MetricAccepts).Value(); a != 3 {
		t.Fatalf("accepts = %d, want 3", a)
	}
}
