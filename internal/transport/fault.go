// Fault injection for signaling transports: a Network wrapper that
// drops, delays, duplicates, and reorders envelopes, and severs live
// links on schedule — an adversarial network in a box, in the spirit
// of chaos-style resilience testing. Everything is driven by a
// deterministic seeded PRNG, so a failing chaos run replays exactly
// from its seed.
//
// Faults are injected on the send side of every port the network
// creates (both the dialing and the accepting end), below whatever
// reliability layer is stacked on top: a dropped envelope is "sent"
// as far as the caller can tell, exactly like a datagram lost by a
// real network, and a severed link looks like a TCP reset.
package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/timerwheel"
)

// FaultProfile configures a FaultNetwork. Rates are probabilities in
// [0,1], evaluated independently per envelope in the order drop,
// duplicate, delay, reorder. The zero profile injects nothing.
type FaultProfile struct {
	Seed int64 // PRNG seed; runs with the same seed and schedule replay

	DropRate    float64       // lose the envelope entirely
	DupRate     float64       // deliver the envelope twice
	DelayRate   float64       // hold the envelope for a random delay
	DelayMin    time.Duration // delay bounds (default 1ms..20ms)
	DelayMax    time.Duration
	ReorderRate float64 // hold the envelope until one more is sent

	// SeverEvery periodically severs every live link (0: never). Severed
	// links look like broken sockets: readers see EOF, senders see a
	// closed port. PartitionFor makes Dial fail for that long after each
	// sever, forcing reconnect backoff to actually back off.
	SeverEvery   time.Duration
	PartitionFor time.Duration
}

func (p FaultProfile) withDefaults() FaultProfile {
	if p.DelayMin <= 0 {
		p.DelayMin = time.Millisecond
	}
	if p.DelayMax < p.DelayMin {
		p.DelayMax = 20 * time.Millisecond
	}
	return p
}

// FaultNetwork wraps a Network and injects the configured faults into
// every channel established through it.
type FaultNetwork struct {
	under Network
	prof  FaultProfile
	wheel *timerwheel.Wheel

	mu        sync.Mutex
	ports     map[*faultPort]struct{}
	nextSeed  int64
	downUntil time.Time
	stopped   bool

	faults *telemetry.Counter
}

// NewFaultNetwork wraps under with fault injection per prof. Timers
// (delays, sever schedule) run on the shared process timer wheel.
func NewFaultNetwork(under Network, prof FaultProfile) *FaultNetwork {
	n := &FaultNetwork{
		under:  under,
		prof:   prof.withDefaults(),
		wheel:  procWheel(),
		ports:  map[*faultPort]struct{}{},
		faults: telemetry.C(MetricFaultsInjected),
	}
	if n.prof.SeverEvery > 0 {
		n.scheduleSever()
	}
	return n
}

func (n *FaultNetwork) scheduleSever() {
	n.wheel.Schedule(n.prof.SeverEvery, func() {
		n.Sever()
		n.mu.Lock()
		stopped := n.stopped
		n.mu.Unlock()
		if !stopped {
			n.scheduleSever()
		}
	})
}

// Sever cuts every live link established through this network, as a
// partition or mass TCP reset would, and — if PartitionFor is set —
// refuses new dials for that long.
func (n *FaultNetwork) Sever() {
	n.mu.Lock()
	cut := make([]*faultPort, 0, len(n.ports))
	for p := range n.ports {
		cut = append(cut, p)
	}
	n.ports = map[*faultPort]struct{}{}
	if n.prof.PartitionFor > 0 {
		n.downUntil = time.Now().Add(n.prof.PartitionFor)
	}
	n.mu.Unlock()
	for _, p := range cut {
		n.faults.Inc()
		p.Port.Close() // sever the underlying link; the wrapper stays inert
	}
}

// Stop ends the sever schedule. Live ports are left alone.
func (n *FaultNetwork) Stop() {
	n.mu.Lock()
	n.stopped = true
	n.mu.Unlock()
}

func (n *FaultNetwork) wrap(p Port) Port {
	n.mu.Lock()
	seed := n.prof.Seed + n.nextSeed
	n.nextSeed++
	fp := &faultPort{
		Port:  p,
		net:   n,
		rng:   rand.New(rand.NewSource(seed)),
		prof:  n.prof,
		wheel: n.wheel,
	}
	n.ports[fp] = struct{}{}
	n.mu.Unlock()
	return fp
}

func (n *FaultNetwork) drop(fp *faultPort) {
	n.mu.Lock()
	delete(n.ports, fp)
	n.mu.Unlock()
}

// Dial implements Network. During a partition window it fails, like a
// dial into a black-holed route.
func (n *FaultNetwork) Dial(addr string) (Port, error) {
	n.mu.Lock()
	down := time.Now().Before(n.downUntil)
	n.mu.Unlock()
	if down {
		return nil, fmt.Errorf("transport: fault partition: %q unreachable", addr)
	}
	p, err := n.under.Dial(addr)
	if err != nil {
		return nil, err
	}
	return n.wrap(p), nil
}

// Listen implements Network.
func (n *FaultNetwork) Listen(addr string) (Listener, error) {
	l, err := n.under.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultListener{Listener: l, net: n}, nil
}

type faultListener struct {
	Listener
	net *FaultNetwork
}

func (l *faultListener) Accept() (Port, error) {
	p, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.net.wrap(p), nil
}

// faultPort injects send-side faults, delegating everything else to
// the wrapped port.
type faultPort struct {
	Port
	net   *FaultNetwork
	prof  FaultProfile
	wheel *timerwheel.Wheel

	mu   sync.Mutex
	rng  *rand.Rand
	held *sig.Envelope // reorder hold: sent after the next envelope
}

// RecvBatch forwards batch draining when the wrapped port supports it.
func (p *faultPort) RecvBatch(buf []sig.Envelope) (int, bool) {
	if bp, ok := p.Port.(BatchPort); ok {
		return bp.RecvBatch(buf)
	}
	e, ok := <-p.Port.Recv()
	if !ok {
		return 0, false
	}
	buf[0] = e
	return 1, true
}

func (p *faultPort) Close() error {
	p.net.drop(p)
	return p.Port.Close()
}

func (p *faultPort) Send(e sig.Envelope) error {
	p.mu.Lock()
	prof := &p.prof
	if prof.DropRate > 0 && p.rng.Float64() < prof.DropRate {
		p.mu.Unlock()
		p.net.faults.Inc()
		return nil // lost in transit; the sender cannot tell
	}
	dup := prof.DupRate > 0 && p.rng.Float64() < prof.DupRate
	if prof.DelayRate > 0 && p.rng.Float64() < prof.DelayRate {
		d := prof.DelayMin + time.Duration(p.rng.Int63n(int64(prof.DelayMax-prof.DelayMin)+1))
		p.mu.Unlock()
		p.net.faults.Inc()
		p.wheel.Schedule(d, func() {
			p.Port.Send(e) // the link may have died meanwhile; that's the fault's problem
			if dup {
				p.Port.Send(e)
			}
		})
		return nil
	}
	var flush *sig.Envelope
	if p.held != nil {
		// A held envelope goes out right after this one: the pair is
		// swapped on the wire.
		flush, p.held = p.held, nil
	} else if prof.ReorderRate > 0 && p.rng.Float64() < prof.ReorderRate {
		p.held = &e
		p.mu.Unlock()
		p.net.faults.Inc()
		// Do not hold forever on an idling channel: flush after a beat
		// if nothing overtakes it.
		p.wheel.Schedule(10*time.Millisecond, func() { p.flushHeld() })
		return nil
	}
	p.mu.Unlock()
	if dup {
		p.net.faults.Inc()
	}
	err := p.Port.Send(e)
	if dup {
		p.Port.Send(e)
	}
	if flush != nil {
		p.Port.Send(*flush)
	}
	return err
}

func (p *faultPort) flushHeld() {
	p.mu.Lock()
	held := p.held
	p.held = nil
	p.mu.Unlock()
	if held != nil {
		p.Port.Send(*held)
	}
}
