package transport

import (
	"testing"
	"time"

	"ipmedia/internal/sig"
)

func muxPair(t *testing.T, under Network) (*Mux, *Mux, string) {
	t.Helper()
	a, b := NewMux(under), NewMux(under)
	addr, err := b.ListenCarrier("muxB")
	if err != nil {
		t.Fatalf("ListenCarrier: %v", err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, addr
}

func muxRecv(t *testing.T, p Port, timeout time.Duration) (sig.Envelope, bool) {
	t.Helper()
	select {
	case e, ok := <-p.Recv():
		return e, ok
	case <-time.After(timeout):
		t.Fatalf("recv timed out")
		return sig.Envelope{}, false
	}
}

func TestMuxRoundTrip(t *testing.T) {
	a, b, addr := muxPair(t, NewMemNetwork())
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	near, err := a.Dial(addr, "svc")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	far, err := l.Accept()
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}

	// Data flows both ways, in order, through the binary framing.
	for i := 1; i <= 50; i++ {
		if err := near.Send(sig.Envelope{Tunnel: i, Sig: sig.Close()}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 1; i <= 50; i++ {
		e, ok := muxRecv(t, far, 2*time.Second)
		if !ok || e.Tunnel != i || e.Sig.Kind != sig.KindClose {
			t.Fatalf("recv %d: got %v ok=%v", i, e, ok)
		}
	}
	if err := far.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaSetup,
		Attrs: sig.NewAttrs("from", "far")}}); err != nil {
		t.Fatalf("reply: %v", err)
	}
	e, ok := muxRecv(t, near, 2*time.Second)
	if !ok || !e.IsMeta() || e.Meta.Kind != sig.MetaSetup || e.Meta.Get("from") != "far" {
		t.Fatalf("reply recv: got %v ok=%v", e, ok)
	}

	// Close on one side hangs up the other.
	near.Close()
	if _, ok := muxRecv(t, far, 2*time.Second); ok {
		t.Fatalf("far port still open after near close")
	}
}

func TestMuxUnknownLogicalHangsUp(t *testing.T) {
	a, _, addr := muxPair(t, NewMemNetwork())
	p, err := a.Dial(addr, "no-such-service")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	// The open is optimistic; the refusal arrives as a hangup.
	if _, ok := muxRecv(t, p, 2*time.Second); ok {
		t.Fatalf("expected hangup for unknown logical listener")
	}
}

func TestMuxInvalidateFailsChannels(t *testing.T) {
	a, b, addr := muxPair(t, NewMemNetwork())
	l, _ := b.Listen("svc")
	near, err := a.Dial(addr, "svc")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := l.Accept(); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	a.Invalidate(addr)
	if _, ok := muxRecv(t, near, 2*time.Second); ok {
		t.Fatalf("logical channel survived carrier invalidation")
	}
	// A fresh dial establishes a fresh carrier.
	near2, err := a.Dial(addr, "svc")
	if err != nil {
		t.Fatalf("redial after invalidate: %v", err)
	}
	far2, err := l.Accept()
	if err != nil {
		t.Fatalf("re-accept: %v", err)
	}
	if err := near2.Send(sig.Envelope{Sig: sig.Close()}); err != nil {
		t.Fatalf("send on fresh carrier: %v", err)
	}
	if _, ok := muxRecv(t, far2, 2*time.Second); !ok {
		t.Fatalf("fresh carrier did not deliver")
	}
}

// TestMuxRidesOutPartition pins the tentpole claim that a carrier
// outage shorter than the reliable give-up budget is invisible to the
// logical channels: the rel layer underneath the mux re-dials and
// retransmits, and no logical channel dies.
func TestMuxRidesOutPartition(t *testing.T) {
	fn := NewFaultNetwork(NewMemNetwork(), FaultProfile{Seed: 7, PartitionFor: 150 * time.Millisecond})
	rel := NewRelNetwork(fn, RelConfig{Seed: 7, GiveUpAfter: 5 * time.Second})
	defer fn.Stop()
	a, b, addr := muxPair(t, rel)
	l, _ := b.Listen("svc")
	near, err := a.Dial(addr, "svc")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	far, err := l.Accept()
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if err := near.Send(sig.Envelope{Tunnel: 1, Sig: sig.Close()}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if e, ok := muxRecv(t, far, 2*time.Second); !ok || e.Tunnel != 1 {
		t.Fatalf("pre-partition delivery failed")
	}

	fn.Sever() // every wire cut, dials refused for 150ms

	// Sends during the partition are retained by the rel layer and
	// delivered after it heals; the logical channel never notices.
	for i := 2; i <= 10; i++ {
		if err := near.Send(sig.Envelope{Tunnel: i, Sig: sig.Close()}); err != nil {
			t.Fatalf("send during partition: %v", err)
		}
	}
	for i := 2; i <= 10; i++ {
		e, ok := muxRecv(t, far, 10*time.Second)
		if !ok || e.Tunnel != i {
			t.Fatalf("post-heal recv %d: got %v ok=%v", i, e, ok)
		}
	}
}
