package transport

import (
	"sync"
	"testing"

	"ipmedia/internal/sig"
)

// drainInline consumes a ring port through the InlinePort path the way
// a runtime shard does: an edge-triggered readiness callback posting to
// a wake channel, then TryRecvBatch until empty.
func drainInline(t *testing.T, p Port, out chan<- sig.Envelope, done *sync.WaitGroup) {
	t.Helper()
	ip, ok := p.(InlinePort)
	if !ok {
		t.Fatalf("port %T is not an InlinePort", p)
	}
	wake := make(chan struct{}, 1)
	ip.SetReady(func() {
		select {
		case wake <- struct{}{}:
		default:
		}
	})
	done.Add(1)
	go func() {
		defer done.Done()
		var buf [8]sig.Envelope
		for range wake {
			for {
				n, open := ip.TryRecvBatch(buf[:])
				for i := 0; i < n; i++ {
					out <- buf[i]
				}
				if n == 0 {
					if !open {
						close(out)
						return
					}
					break // edge re-armed; wait for the next wake
				}
			}
		}
	}()
}

// TestRingFIFOThroughSpill pushes far more envelopes than the ring
// holds, forcing the spill path, and checks strict FIFO on the far end.
func TestRingFIFOThroughSpill(t *testing.T) {
	a, b := ringPipe("a", "b", 4) // tiny ring: most envelopes spill
	const total = 10000

	out := make(chan sig.Envelope, total)
	var wg sync.WaitGroup
	drainInline(t, b, out, &wg)

	go func() {
		for i := 0; i < total; i++ {
			if err := a.Send(sig.Envelope{Seq: uint32(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		a.Close()
	}()

	for i := 0; i < total; i++ {
		e, ok := <-out
		if !ok {
			t.Fatalf("channel closed after %d of %d envelopes", i, total)
		}
		if e.Seq != uint32(i) {
			t.Fatalf("out of order: got seq %d at position %d", e.Seq, i)
		}
	}
	wg.Wait()
}

// TestRingBidirectional checks the two directions are independent and
// both flow, using the Recv compatibility pump on one side and inline
// draining on the other.
func TestRingBidirectional(t *testing.T) {
	a, b := RingPipe("a", "b")
	if a.Peer() != "b" || b.Peer() != "a" {
		t.Fatalf("peer names: a.Peer=%q b.Peer=%q", a.Peer(), b.Peer())
	}

	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			a.Send(sig.Envelope{Seq: uint32(i)})
		}
	}()
	go func() {
		for i := 0; i < n; i++ {
			b.Send(sig.Envelope{Seq: uint32(1000 + i)})
		}
	}()

	for i := 0; i < n; i++ {
		e := <-b.Recv()
		if e.Seq != uint32(i) {
			t.Fatalf("a->b out of order at %d: seq %d", i, e.Seq)
		}
	}
	for i := 0; i < n; i++ {
		e := <-a.Recv()
		if e.Seq != uint32(1000+i) {
			t.Fatalf("b->a out of order at %d: seq %d", i, e.Seq)
		}
	}
}

// TestRingCloseSemantics: Send after close fails with ErrClosed, the
// peer's Recv channel closes, and envelopes sent before the close are
// still delivered.
func TestRingCloseSemantics(t *testing.T) {
	a, b := RingPipe("a", "b")
	for i := 0; i < 3; i++ {
		if err := a.Send(sig.Envelope{Seq: uint32(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	a.Close()
	if err := a.Send(sig.Envelope{Seq: 99}); err != ErrClosed {
		t.Fatalf("send after close: got %v, want ErrClosed", err)
	}
	if err := b.Send(sig.Envelope{Seq: 99}); err != ErrClosed {
		t.Fatalf("peer send after close: got %v, want ErrClosed", err)
	}
	got := 0
	for range b.Recv() {
		got++
	}
	if got != 3 {
		t.Fatalf("delivered %d pre-close envelopes, want 3", got)
	}
}

// TestRingInlineCloseDrains: closing while the consumer is mid-drain
// still delivers everything already pushed, then reports closed.
func TestRingInlineCloseDrains(t *testing.T) {
	a, b := ringPipe("a", "b", 4)
	const total = 64
	for i := 0; i < total; i++ {
		if err := a.Send(sig.Envelope{Seq: uint32(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	a.Close()

	ip := b.(InlinePort)
	var buf [8]sig.Envelope
	got := 0
	for {
		n, open := ip.TryRecvBatch(buf[:])
		for i := 0; i < n; i++ {
			if buf[i].Seq != uint32(got) {
				t.Fatalf("out of order: seq %d at position %d", buf[i].Seq, got)
			}
			got++
		}
		if n == 0 {
			if open {
				t.Fatalf("ring reports open after close with %d/%d drained", got, total)
			}
			break
		}
	}
	if got != total {
		t.Fatalf("drained %d envelopes, want %d", got, total)
	}
}

// TestRingSetReadyAfterData: a callback registered when data is already
// pending must fire immediately, not wait for the next push.
func TestRingSetReadyAfterData(t *testing.T) {
	a, b := RingPipe("a", "b")
	if err := a.Send(sig.Envelope{Seq: 7}); err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{}, 1)
	b.(InlinePort).SetReady(func() { fired <- struct{}{} })
	select {
	case <-fired:
	default:
		t.Fatal("SetReady with pending data did not fire immediately")
	}
	var buf [1]sig.Envelope
	n, _ := b.(InlinePort).TryRecvBatch(buf[:])
	if n != 1 || buf[0].Seq != 7 {
		t.Fatalf("got n=%d seq=%d", n, buf[0].Seq)
	}
}

// TestRingMemNetwork dials through a ring-port MemNetwork end to end.
func TestRingMemNetwork(t *testing.T) {
	net := NewRingMemNetwork()
	l, err := net.Listen("callee")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	accepted := make(chan Port, 1)
	go func() {
		p, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- p
	}()

	dialed, err := net.Dial("callee")
	if err != nil {
		t.Fatal(err)
	}
	far := <-accepted
	if _, ok := dialed.(InlinePort); !ok {
		t.Fatalf("ring network dialed a %T, want InlinePort", dialed)
	}
	if _, ok := far.(InlinePort); !ok {
		t.Fatalf("ring network accepted a %T, want InlinePort", far)
	}
	if err := dialed.Send(sig.Envelope{Seq: 42}); err != nil {
		t.Fatal(err)
	}
	if e := <-far.Recv(); e.Seq != 42 {
		t.Fatalf("got seq %d, want 42", e.Seq)
	}
	dialed.Close()
}

// TestMemNetworkStripes exercises concurrent Listen/Dial/Close across
// many addresses to shake out races in the striped registry.
func TestMemNetworkStripes(t *testing.T) {
	net := NewMemNetwork()
	var wg sync.WaitGroup
	addrs := []string{"a", "bb", "ccc", "dddd", "eeeee", "ffffff", "g0", "h1", "i2", "j3"}
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			l, err := net.Listen(addr)
			if err != nil {
				t.Errorf("listen %q: %v", addr, err)
				return
			}
			go func() {
				for {
					p, err := l.Accept()
					if err != nil {
						return
					}
					p.Close()
				}
			}()
			for i := 0; i < 50; i++ {
				p, err := net.Dial(addr)
				if err != nil {
					t.Errorf("dial %q: %v", addr, err)
					return
				}
				p.Close()
			}
			l.Close()
			if _, err := net.Dial(addr); err == nil {
				t.Errorf("dial %q after close succeeded", addr)
			}
		}(addr)
	}
	wg.Wait()
}
