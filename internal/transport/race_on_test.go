//go:build race

package transport

// raceEnabled reports whether the race detector is active; zero-alloc
// assertions are skipped under it because the detector's bookkeeping
// allocates.
const raceEnabled = true
