package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ipmedia/internal/sig"
)

func env(tunnel int, seq uint32) sig.Envelope {
	return sig.Envelope{Tunnel: tunnel, Sig: sig.Describe(sig.Descriptor{
		ID: sig.DescID{Origin: "t", Seq: seq}, Addr: "a", Port: 1, Codecs: []sig.Codec{sig.G711},
	})}
}

func recvOne(t *testing.T, p Port) sig.Envelope {
	t.Helper()
	select {
	case e, ok := <-p.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return e
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for envelope")
		return sig.Envelope{}
	}
}

func testPortPair(t *testing.T, a, b Port) {
	t.Helper()
	// FIFO in both directions, interleaved.
	const n = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send(env(0, uint32(i))); err != nil {
				t.Errorf("a.Send: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := b.Send(env(1, uint32(i))); err != nil {
				t.Errorf("b.Send: %v", err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		e := recvOne(t, b)
		if e.Sig.Desc.ID.Seq != uint32(i) {
			t.Fatalf("b received seq %d, want %d (FIFO violated)", e.Sig.Desc.ID.Seq, i)
		}
		e = recvOne(t, a)
		if e.Sig.Desc.ID.Seq != uint32(i) {
			t.Fatalf("a received seq %d, want %d (FIFO violated)", e.Sig.Desc.ID.Seq, i)
		}
	}
	wg.Wait()

	// Close propagates to the peer's Recv.
	a.Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-b.Recv():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("b.Recv not closed after a.Close")
		}
	}
}

func TestMemPipeFIFO(t *testing.T) {
	a, b := Pipe("a", "b")
	testPortPair(t, a, b)
}

func TestTCPPortFIFO(t *testing.T) {
	var tn TCPNetwork
	l, err := tn.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var b Port
	var acceptErr error
	done := make(chan struct{})
	go func() {
		b, acceptErr = l.Accept()
		close(done)
	}()
	a, err := tn.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if acceptErr != nil {
		t.Fatal(acceptErr)
	}
	testPortPair(t, a, b)
}

func TestMemNetworkDialListen(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("pbx")
	if err != nil {
		t.Fatal(err)
	}
	if l.Addr() != "pbx" {
		t.Fatalf("addr = %q", l.Addr())
	}
	go func() {
		p, err := n.Dial("pbx")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		p.Send(env(0, 42))
	}()
	p, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if e := recvOne(t, p); e.Sig.Desc.ID.Seq != 42 {
		t.Fatalf("got seq %d", e.Sig.Desc.ID.Seq)
	}
}

func TestMemNetworkDialUnknown(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Dial("nobody"); err == nil {
		t.Fatal("dial to unknown address must fail")
	}
}

func TestMemNetworkDuplicateListen(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); err == nil {
		t.Fatal("duplicate listen must fail")
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := NewMemNetwork()
	l, _ := n.Listen("x")
	errc := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("accept error = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accept did not unblock")
	}
	// Address is reusable after close.
	if _, err := n.Listen("x"); err != nil {
		t.Fatalf("relisten after close: %v", err)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	a, b := Pipe("a", "b")
	a.Close()
	if err := a.Send(env(0, 1)); err == nil {
		t.Fatal("send after close must fail")
	}
	_ = b
}

func TestUnboundedSendNeverBlocks(t *testing.T) {
	// A box must be able to queue arbitrarily many signals without a
	// reader; this is what makes the FIFO-reliable abstraction safe
	// against two boxes sending to each other simultaneously.
	a, _ := Pipe("a", "b")
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			a.Send(env(0, uint32(i)))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sends blocked without a reader")
	}
}

func TestTCPRoundTripAllSignalKinds(t *testing.T) {
	var tn TCPNetwork
	l, err := tn.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		p, err := l.Accept()
		if err != nil {
			return
		}
		for e := range p.Recv() {
			p.Send(e) // echo
		}
	}()
	a, err := tn.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	d := sig.Descriptor{ID: sig.DescID{Origin: "x", Seq: 1}, Addr: "h", Port: 9, Codecs: []sig.Codec{sig.G711}}
	msgs := []sig.Envelope{
		{Tunnel: 0, Sig: sig.Open(sig.Audio, d)},
		{Tunnel: 1, Sig: sig.Oack(d)},
		{Tunnel: 2, Sig: sig.Close()},
		{Tunnel: 3, Sig: sig.CloseAck()},
		{Tunnel: 4, Sig: sig.Describe(d)},
		{Tunnel: 5, Sig: sig.Select(sig.Selector{Answers: d.ID, Addr: "h2", Port: 10, Codec: sig.G711})},
		{Meta: &sig.Meta{Kind: sig.MetaApp, App: "paid"}},
	}
	for _, m := range msgs {
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got := recvOne(t, a)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("echo %d: got %v want %v", i, got, want)
		}
	}
}
