package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

// TestQueueBound: a bounded queue refuses pushes past its cap with
// ErrBacklog and accepts again once drained.
func TestQueueBound(t *testing.T) {
	q := newQueue(nil, nil, 4)
	e := sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaApp, App: "x"}}
	for i := 0; i < 4; i++ {
		if err := q.push(e); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := q.push(e); !errors.Is(err, ErrBacklog) {
		t.Fatalf("push past cap: got %v, want ErrBacklog", err)
	}
	buf := make([]sig.Envelope, 2)
	if n, ok := q.popBatch(buf); !ok || n != 2 {
		t.Fatalf("popBatch: n=%d ok=%v", n, ok)
	}
	if err := q.push(e); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
}

// TestTCPSendQueueBound: a TCP peer that stops reading must not make
// the local side buffer without limit — Send fails with ErrBacklog at
// the cap and the port is torn down. net.Pipe gives a peer with zero
// buffering, so the writer goroutine wedges on the first frame.
func TestTCPSendQueueBound(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)

	oldCap := SendQueueCap
	SendQueueCap = 8
	defer func() { SendQueueCap = oldCap }()

	near, far := net.Pipe()
	defer far.Close()
	p := NewTCPPort(near)
	defer p.Close()

	e := sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaApp, App: "stall"}}
	var backlogged bool
	// The writer drains up to one batch before wedging on the pipe, so
	// allow cap+batch+1 sends before demanding backpressure.
	for i := 0; i < SendQueueCap+70; i++ {
		if err := p.Send(e); err != nil {
			if !errors.Is(err, ErrBacklog) {
				t.Fatalf("send %d: got %v, want ErrBacklog", i, err)
			}
			backlogged = true
			break
		}
	}
	if !backlogged {
		t.Fatal("send queue never pushed back on a stalled peer")
	}
	// The discarded frame leaves a trace: backlog_dropped counts it.
	if d := reg.Counter(MetricBacklogDropped).Value(); d != 1 {
		t.Fatalf("backlog_dropped = %d, want 1", d)
	}
	// Backlog fails the whole port: further sends see a closed port.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := p.Send(e)
		if errors.Is(err, ErrClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("port not closed after backlog failure, Send: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if hwm := reg.Gauge(MetricSendQueueDepth).HighWater(); hwm < int64(SendQueueCap) {
		t.Fatalf("send_queue_depth high-water = %d, want >= %d", hwm, SendQueueCap)
	}
}

// TestMemPortRecvBatch: the batch receive path returns queued bursts
// in FIFO order without the channel pump.
func TestMemPortRecvBatch(t *testing.T) {
	a, b := Pipe("a", "b")
	const n = 100
	for i := 0; i < n; i++ {
		if err := a.Send(sig.Envelope{Tunnel: i, Meta: &sig.Meta{Kind: sig.MetaApp}}); err != nil {
			t.Fatal(err)
		}
	}
	bp := b.(BatchPort)
	buf := make([]sig.Envelope, 16)
	var got []int
	for len(got) < n {
		k, ok := bp.RecvBatch(buf)
		if !ok {
			t.Fatal("port closed early")
		}
		for i := 0; i < k; i++ {
			got = append(got, buf[i].Tunnel)
		}
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("envelope %d out of order: tunnel %d", i, v)
		}
	}
	a.Close()
	if k, ok := bp.RecvBatch(buf); ok || k != 0 {
		t.Fatalf("RecvBatch after close: k=%d ok=%v, want 0,false", k, ok)
	}
}
