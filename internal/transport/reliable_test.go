package transport

import (
	"testing"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/telemetry"
)

// relPair establishes one reliable channel over net and returns the
// dialer and acceptor ports.
func relPair(t *testing.T, n Network, addr string) (Port, Port) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	acceptCh := make(chan Port, 1)
	go func() {
		p, err := l.Accept()
		if err != nil {
			return
		}
		acceptCh <- p
	}()
	dialer, err := n.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case accepted := <-acceptCh:
		return dialer, accepted
	case <-time.After(2 * time.Second):
		t.Fatal("accept never completed")
		return nil, nil
	}
}

// drainN receives exactly n envelopes via RecvBatch, failing on
// timeout.
func drainN(t *testing.T, p Port, n int) []sig.Envelope {
	t.Helper()
	got := make([]sig.Envelope, 0, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]sig.Envelope, 64)
		for len(got) < n {
			c, ok := p.(BatchPort).RecvBatch(buf)
			if !ok {
				return
			}
			got = append(got, buf[:c]...)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
	}
	if len(got) != n {
		t.Fatalf("received %d envelopes, want %d", len(got), n)
	}
	return got
}

// TestRelPortLossless: over a clean network the reliable layer is
// transparent — in order, no duplicates, sequence numbers stripped,
// and no layer control leaks to the receiver.
func TestRelPortLossless(t *testing.T) {
	n := NewRelNetwork(NewMemNetwork(), RelConfig{})
	dialer, accepted := relPair(t, n, "a")
	defer dialer.Close()
	defer accepted.Close()
	const total = 500
	for i := 0; i < total; i++ {
		if err := dialer.Send(sig.Envelope{Tunnel: i, Sig: sig.Close()}); err != nil {
			t.Fatal(err)
		}
	}
	got := drainN(t, accepted, total)
	for i, e := range got {
		if e.Tunnel != i {
			t.Fatalf("envelope %d arrived as tunnel %d", i, e.Tunnel)
		}
		if e.Seq != 0 {
			t.Fatalf("sequence number leaked to receiver: %v", e)
		}
		if e.Meta != nil {
			t.Fatalf("layer control leaked to receiver: %v", e)
		}
	}
}

// TestRelPortRecoversLoss: under heavy drop, duplication, and
// reordering, retransmission still delivers the exact stream, in
// order, both directions.
func TestRelPortRecoversLoss(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)
	fn := NewFaultNetwork(NewMemNetwork(), FaultProfile{
		Seed: 42, DropRate: 0.15, DupRate: 0.1, ReorderRate: 0.1,
	})
	defer fn.Stop()
	n := NewRelNetwork(fn, RelConfig{RexmitInterval: 30 * time.Millisecond, AckDelay: 10 * time.Millisecond})
	dialer, accepted := relPair(t, n, "a")
	defer dialer.Close()
	defer accepted.Close()
	const total = 400
	for i := 0; i < total; i++ {
		dialer.Send(sig.Envelope{Tunnel: i, Sig: sig.Close()})
		accepted.Send(sig.Envelope{Tunnel: i, Sig: sig.CloseAck()})
	}
	for _, end := range []Port{accepted, dialer} {
		got := drainN(t, end, total)
		for i, e := range got {
			if e.Tunnel != i {
				t.Fatalf("envelope %d arrived as tunnel %d", i, e.Tunnel)
			}
		}
	}
	if reg.Counter(slot.MetricRetransmits).Value() == 0 {
		t.Fatal("15%% drop produced zero retransmits")
	}
	if reg.Counter(slot.MetricDupDropped).Value() == 0 {
		t.Fatal("duplication and retransmission produced zero dup drops")
	}
}

// TestRelPortReconnects: severing every live wire mid-stream is a
// blip, not a loss — the dialer re-dials, the acceptor rebinds the
// channel identity, and delivery resumes on the same ports.
func TestRelPortReconnects(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)
	fn := NewFaultNetwork(NewMemNetwork(), FaultProfile{PartitionFor: 50 * time.Millisecond})
	defer fn.Stop()
	n := NewRelNetwork(fn, RelConfig{
		RexmitInterval: 30 * time.Millisecond,
		AckDelay:       10 * time.Millisecond,
		RedialMin:      10 * time.Millisecond,
	})
	dialer, accepted := relPair(t, n, "a")
	defer dialer.Close()
	defer accepted.Close()

	const half = 100
	for i := 0; i < half; i++ {
		dialer.Send(sig.Envelope{Tunnel: i, Sig: sig.Close()})
	}
	fn.Sever()
	for i := half; i < 2*half; i++ {
		dialer.Send(sig.Envelope{Tunnel: i, Sig: sig.Close()})
	}
	got := drainN(t, accepted, 2*half)
	for i, e := range got {
		if e.Tunnel != i {
			t.Fatalf("envelope %d arrived as tunnel %d after reconnect", i, e.Tunnel)
		}
	}
	if reg.Counter(MetricReconnects).Value() == 0 {
		t.Fatal("sever produced zero reconnects")
	}
	if reg.Counter(MetricGiveups).Value() != 0 {
		t.Fatal("recoverable sever counted as giveup")
	}
	// The acceptor can still talk back over the rebound wire.
	accepted.Send(sig.Envelope{Tunnel: 7, Sig: sig.Close()})
	back := drainN(t, dialer, 1)
	if back[0].Tunnel != 7 {
		t.Fatalf("reverse direction broken after rebind: %v", back[0])
	}
}

// TestRelPortGivesUp: a channel that stays down past the budget is
// abandoned on both ends — receive queues close (the runner's
// portLost path) and path.giveups records the degradation.
func TestRelPortGivesUp(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)
	fn := NewFaultNetwork(NewMemNetwork(), FaultProfile{})
	defer fn.Stop()
	n := NewRelNetwork(fn, RelConfig{
		RedialMin:   5 * time.Millisecond,
		GiveUpAfter: 150 * time.Millisecond,
	})
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	acceptCh := make(chan Port, 1)
	go func() {
		p, err := l.Accept()
		if err != nil {
			return
		}
		acceptCh <- p
	}()
	dialer, err := n.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	accepted := <-acceptCh
	// Kill the listener so redials have nowhere to land, then cut the
	// wire: recovery must fail and the budget must expire.
	l.Close()
	fn.Sever()
	for _, end := range []Port{dialer, accepted} {
		select {
		case _, ok := <-end.Recv():
			if ok {
				t.Fatal("dead channel delivered an envelope")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("give-up budget never expired")
		}
	}
	if g := reg.Counter(MetricGiveups).Value(); g != 2 {
		t.Fatalf("giveups = %d, want 2 (one per end)", g)
	}
	if err := dialer.Send(sig.Envelope{Sig: sig.Close()}); err != ErrClosed {
		t.Fatalf("send on abandoned channel: %v, want ErrClosed", err)
	}
}

// TestRelPortCleanCloseIsNotGiveup: tearing a channel down on purpose
// must not recover, reconnect, or count as a giveup.
func TestRelPortCleanCloseIsNotGiveup(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)
	n := NewRelNetwork(NewMemNetwork(), RelConfig{})
	dialer, accepted := relPair(t, n, "a")
	dialer.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaTeardown}})
	got := drainN(t, accepted, 1)
	if got[0].Meta == nil || got[0].Meta.Kind != sig.MetaTeardown {
		t.Fatalf("teardown not delivered: %v", got[0])
	}
	dialer.Close()
	accepted.Close()
	time.Sleep(50 * time.Millisecond)
	if g := reg.Counter(MetricGiveups).Value(); g != 0 {
		t.Fatalf("clean close counted %d giveups", g)
	}
	if r := reg.Counter(MetricReconnects).Value(); r != 0 {
		t.Fatalf("clean close attempted %d reconnects", r)
	}
}

// TestRelPortLingerDeliversTeardown: the box runtime closes a port
// right after sending its teardown; with the wire dropping envelopes,
// the lingering close must still deliver that teardown (retransmitted)
// instead of letting the peer's giveup budget expire.
func TestRelPortLingerDeliversTeardown(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)
	// Seed chosen so at least one teardown send is dropped across the
	// rounds below; determinism makes the seed a fixture, not a flake.
	fn := NewFaultNetwork(NewMemNetwork(), FaultProfile{Seed: 5, DropRate: 0.4})
	defer fn.Stop()
	n := NewRelNetwork(fn, RelConfig{
		RexmitInterval: 20 * time.Millisecond,
		AckDelay:       5 * time.Millisecond,
		GiveUpAfter:    400 * time.Millisecond,
	})
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	acceptCh := make(chan Port, 1)
	go func() {
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			acceptCh <- p
		}
	}()
	const rounds = 8
	for i := 0; i < rounds; i++ {
		dialer, err := n.Dial("a")
		if err != nil {
			t.Fatal(err)
		}
		accepted := <-acceptCh
		dialer.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaTeardown}})
		dialer.Close() // immediately, like the runner's OutTeardown
		got := drainN(t, accepted, 1)
		if got[0].Meta == nil || got[0].Meta.Kind != sig.MetaTeardown {
			t.Fatalf("round %d: teardown lost across lossy close: %v", i, got[0])
		}
		accepted.Close()
	}
	time.Sleep(600 * time.Millisecond) // let any giveup budget expire
	if g := reg.Counter(MetricGiveups).Value(); g != 0 {
		t.Fatalf("clean lossy teardowns counted %d giveups", g)
	}
	if reg.Counter(slot.MetricRetransmits).Value() == 0 {
		t.Fatal("40%% drop over 8 teardowns needed zero retransmits (seed no longer exercises the linger)")
	}
}

// TestRelSendSteadyStateZeroAlloc: with faults absent and acks
// flowing, the reliable send path adds nothing to the allocation
// profile of a raw port — the ISSUE's alloc gate.
func TestRelSendSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	n := NewRelNetwork(NewMemNetwork(), RelConfig{})
	dialer, accepted := relPair(t, n, "a")
	defer dialer.Close()
	defer accepted.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]sig.Envelope, 256)
		for {
			if _, ok := accepted.(BatchPort).RecvBatch(buf); !ok {
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	e := sig.Envelope{Tunnel: 1, Sig: sig.Close()}
	for i := 0; i < 10000; i++ { // warm the ring and the queues
		dialer.Send(e)
	}
	time.Sleep(100 * time.Millisecond) // let acks trim the tracker
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dialer.Send(e)
		}
	})
	close(stop)
	if a := res.AllocsPerOp(); a > 0 {
		t.Fatalf("steady-state reliable send allocates %d allocs/op, want 0", a)
	}
}

// TestRelPortSurvivesRepeatedPartitions: partitions landing
// back-to-back — each heal followed by another sever as soon as the
// next wire is up, before the previous incarnation's teardown has
// drained — must each be a blip, never a portLost. The acceptor
// rebinds the same channel identity on every redial, so across the
// whole flapping episode both directions deliver the exact stream in
// order and the give-up counter stays at zero.
func TestRelPortSurvivesRepeatedPartitions(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)
	fn := NewFaultNetwork(NewMemNetwork(), FaultProfile{PartitionFor: 30 * time.Millisecond})
	defer fn.Stop()
	n := NewRelNetwork(fn, RelConfig{
		RexmitInterval: 20 * time.Millisecond,
		AckDelay:       5 * time.Millisecond,
		RedialMin:      5 * time.Millisecond,
		GiveUpAfter:    5 * time.Second,
	})
	dialer, accepted := relPair(t, n, "a")
	defer dialer.Close()
	defer accepted.Close()

	const rounds, per = 6, 40
	seq := 0
	for r := 0; r < rounds; r++ {
		// Sever first, then send: the round's envelopes can only arrive
		// over the next wire, so draining them proves a redial happened
		// and the identity rebound. Each round severs the incarnation the
		// previous round just brought up — back-to-back, while the old
		// one's teardown is still draining.
		fn.Sever()
		for i := 0; i < per; i++ {
			dialer.Send(sig.Envelope{Tunnel: seq, Sig: sig.Close()})
			accepted.Send(sig.Envelope{Tunnel: seq, Sig: sig.CloseAck()})
			seq++
		}
		for _, end := range []Port{accepted, dialer} {
			got := drainN(t, end, per)
			for i, e := range got {
				if e.Tunnel != r*per+i {
					t.Fatalf("round %d: envelope %d arrived as tunnel %d", r, r*per+i, e.Tunnel)
				}
			}
		}
	}
	if got := reg.Counter(MetricReconnects).Value(); got < rounds {
		t.Fatalf("%d severs of live wires produced only %d reconnects", rounds, got)
	}
	if got := reg.Counter(MetricGiveups).Value(); got != 0 {
		t.Fatalf("flapping wire counted as %d giveups — runners would see portLost", got)
	}
	// Both ends still live after the episode: a fresh exchange flows
	// without redial or reset.
	dialer.Send(sig.Envelope{Tunnel: 99999, Sig: sig.Close()})
	if got := drainN(t, accepted, 1); got[0].Tunnel != 99999 {
		t.Fatalf("forward path dead after flapping: %v", got[0])
	}
	accepted.Send(sig.Envelope{Tunnel: 88888, Sig: sig.CloseAck()})
	if got := drainN(t, dialer, 1); got[0].Tunnel != 88888 {
		t.Fatalf("reverse path dead after flapping: %v", got[0])
	}
}
