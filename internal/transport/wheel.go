package transport

import (
	"sync"

	"ipmedia/internal/timerwheel"
)

// procWheel is the transport layer's shared timer wheel: retransmit
// and redial timers (RelNetwork), fault delays and sever schedules
// (FaultNetwork). These layers sit below box placement — one wheel for
// the whole transport stack is the right granularity, and it keeps the
// timerwheel package free of a process-global singleton that the box
// runtime's per-shard wheels would have to fight.
var (
	procWheelOnce sync.Once
	procWheelW    *timerwheel.Wheel
)

func procWheel() *timerwheel.Wheel {
	procWheelOnce.Do(func() {
		procWheelW = timerwheel.NewNamed(timerwheel.DefaultTick, "transport")
	})
	return procWheelW
}
