//go:build !race

package transport

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
