// Heartbeats for the cluster control plane. A shard process proves
// liveness to its supervisor by sending a small MetaApp envelope on
// the control channel at a fixed cadence; the supervisor side tracks
// arrivals and counts misses. The machinery is deliberately dumb —
// detection policy (how many misses before a probe, before a kill)
// belongs to the supervisor, not the transport.
package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"ipmedia/internal/sig"
)

// HeartbeatApp is the control-envelope application name heartbeats
// travel under.
const HeartbeatApp = "ctl/hb"

// Heartbeater sends heartbeat envelopes on a port at a fixed cadence,
// on the transport timer wheel (no goroutine per heartbeater). The
// optional payload hook stamps each beat with caller attributes —
// the cluster shards piggyback their vital signs (completed calls,
// durable CDRs, formula violations) so the supervisor's last-known
// view of a shard survives the shard's death.
type Heartbeater struct {
	port    Port
	every   time.Duration
	payload func(m *sig.Meta)
	stopped atomic.Bool
}

// StartHeartbeat begins beating on p every interval. payload, if
// non-nil, may add attributes to each beat's meta (it runs on the
// timer wheel and must not block). The first beat is sent immediately.
func StartHeartbeat(p Port, every time.Duration, payload func(m *sig.Meta)) *Heartbeater {
	h := &Heartbeater{port: p, every: every, payload: payload}
	h.beat()
	return h
}

// Stop ceases beating. Idempotent.
func (h *Heartbeater) Stop() { h.stopped.Store(true) }

func (h *Heartbeater) beat() {
	if h.stopped.Load() {
		return
	}
	m := &sig.Meta{Kind: sig.MetaApp, App: HeartbeatApp}
	if h.payload != nil {
		h.payload(m)
	}
	if h.port.Send(sig.Envelope{Meta: m}) != nil {
		// The control channel is gone; the supervisor will notice the
		// silence. Nothing useful to do here.
		h.stopped.Store(true)
		return
	}
	procWheel().Schedule(h.every, h.beat)
}

// HeartbeatMonitor is the supervisor-side view of one peer's beats:
// Beat records an arrival, Check classifies the silence since.
type HeartbeatMonitor struct {
	mu    sync.Mutex
	every time.Duration
	last  time.Time
}

// NewHeartbeatMonitor tracks a peer expected to beat every interval.
// The clock starts at creation, so a peer that never beats at all
// still accrues misses.
func NewHeartbeatMonitor(every time.Duration) *HeartbeatMonitor {
	return &HeartbeatMonitor{every: every, last: time.Now()}
}

// Beat records one heartbeat arrival.
func (m *HeartbeatMonitor) Beat() {
	m.mu.Lock()
	m.last = time.Now()
	m.mu.Unlock()
}

// Reset restarts the silence clock (after a restart, the new process
// owes its first beat one interval from now, not from the old epoch).
func (m *HeartbeatMonitor) Reset() { m.Beat() }

// Missed reports how many whole beat intervals have elapsed since the
// last arrival beyond the first — 0 while the peer is on cadence.
func (m *HeartbeatMonitor) Missed() int {
	m.mu.Lock()
	last := m.last
	m.mu.Unlock()
	silent := time.Since(last)
	if silent <= m.every {
		return 0
	}
	return int(silent / m.every)
}
