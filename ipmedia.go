// Package ipmedia is a Go implementation of compositional control of
// IP media, after Zave & Cheung, "Compositional Control of IP Media"
// (CoNEXT 2006).
//
// In many IP media services, point-to-point media channels are set up
// with the participation of one or more application servers, which may
// manipulate the same channels concurrently and without knowledge of
// each other. This library provides the paper's complete solution:
//
//   - the four high-level goal primitives — OpenSlot, CloseSlot,
//     HoldSlot, and FlowLink — with which application programmers
//     control media channels declaratively (Section IV);
//   - the idempotent, unilateral signaling protocol of descriptors and
//     selectors they compile into (Section VI);
//   - the box runtime with state-oriented programs, running unchanged
//     over in-process queues, TCP, a virtual-clock simulator, and an
//     explicit-state model checker (Sections IV and VII);
//   - media endpoints (user devices, tone generators, IVRs, conference
//     bridges, movie servers) and a simulated media plane that shows
//     packets flowing exactly when the path semantics allow;
//   - the formal path semantics of Section V, with a model checker
//     that verifies the twelve signaling-path models of Section VIII
//     against their temporal specifications;
//   - the performance laboratory of Sections VIII-C and IX-B,
//     including a SIP-semantics baseline, reproducing the paper's
//     latency formulas (2n+3c versus 7n+7c and 10n+11c+d) exactly.
//
// The subsystems live in internal packages; this package re-exports
// the public surface. See the examples directory for runnable
// programs, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// the paper-versus-measured results.
package ipmedia

import (
	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/endpoint"
	"ipmedia/internal/lab"
	"ipmedia/internal/ltl"
	"ipmedia/internal/mc"
	"ipmedia/internal/mcmodel"
	"ipmedia/internal/media"
	"ipmedia/internal/path"
	"ipmedia/internal/pathmon"
	"ipmedia/internal/scenario"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

// Signaling vocabulary (paper Section VI).
type (
	// Medium names a kind of media, such as Audio or Video.
	Medium = sig.Medium
	// Codec names a data format for a medium.
	Codec = sig.Codec
	// Descriptor describes an endpoint as a receiver of media.
	Descriptor = sig.Descriptor
	// Selector declares an endpoint's intention to send to a described
	// receiver.
	Selector = sig.Selector
	// Signal is one protocol message within a tunnel.
	Signal = sig.Signal
	// Meta is a channel-scope meta-signal.
	Meta = sig.Meta
	// MetaKind classifies meta-signals.
	MetaKind = sig.MetaKind
	// Attr is one key/value attribute of a meta-signal. Meta attrs are
	// a slice in canonical sorted order; build them with NewAttrs.
	Attr = sig.Attr
)

// NewAttrs builds a meta-signal attribute list from alternating
// key/value pairs, in the canonical sorted order the wire format
// requires.
func NewAttrs(kv ...string) []Attr { return sig.NewAttrs(kv...) }

// The meta-signal kinds (paper Section III-A).
const (
	MetaSetup       = sig.MetaSetup
	MetaTeardown    = sig.MetaTeardown
	MetaAvailable   = sig.MetaAvailable
	MetaUnavailable = sig.MetaUnavailable
	MetaApp         = sig.MetaApp
)

// Common media and codecs.
const (
	Audio   = sig.Audio
	Video   = sig.Video
	G711    = sig.G711
	G726    = sig.G726
	NoMedia = sig.NoMedia
)

// The four goal primitives (paper Section IV) and their support types.
type (
	// Goal is a goal object controlling one or two slots.
	Goal = core.Goal
	// Profile supplies the descriptors and selectors a goal sends.
	Profile = core.Profile
	// EndpointProfile is the profile of a genuine media endpoint.
	EndpointProfile = core.EndpointProfile
	// ServerProfile is the profile of an application server: it mutes
	// media in both directions.
	ServerProfile = core.ServerProfile
)

// NewOpenSlot builds an openSlot goal: open a channel of medium m on
// the named slot and push it to flowing.
func NewOpenSlot(slot string, m Medium, p Profile) Goal { return core.NewOpenSlot(slot, m, p) }

// NewCloseSlot builds a closeSlot goal: close the slot and keep it
// closed.
func NewCloseSlot(slot string) Goal { return core.NewCloseSlot(slot) }

// NewHoldSlot builds a holdSlot goal: accept a channel if the far end
// requests one, but never originate anything.
func NewHoldSlot(slot string, p Profile) Goal { return core.NewHoldSlot(slot, p) }

// NewFlowLink builds a flowLink goal: make two slots behave as one
// transparent signaling path, with a bias toward media flow.
func NewFlowLink(s1, s2 string) Goal { return core.NewFlowLink(s1, s2) }

// NewEndpointProfile builds a profile for a device receiving at
// addr:port with the given codec menus.
func NewEndpointProfile(origin, addr string, port int, recv, send []Codec) *EndpointProfile {
	return core.NewEndpointProfile(origin, addr, port, recv, send)
}

// Box runtime and the state-oriented programming model.
type (
	// Box is the synchronous core of one peer module involved in media
	// control.
	Box = box.Box
	// Runner drives a Box live over a Network.
	Runner = box.Runner
	// Program is a state-oriented box program: states carry goal
	// annotations, transitions carry guards.
	Program = box.Program
	// State is one program state.
	State = box.State
	// Trans is one guarded transition.
	Trans = box.Trans
	// Guard is a transition predicate.
	Guard = box.Guard
	// Annot is a goal annotation on a program state.
	Annot = box.Annot
	// Ctx is the programming interface inside a box.
	Ctx = box.Ctx
	// Event is one stimulus for a box core.
	Event = box.Event
)

// NewBox creates a box with the given media profile.
func NewBox(name string, p Profile) *Box { return box.New(name, p) }

// NewRunner wraps a box for live execution over net.
func NewRunner(b *Box, net Network) *Runner { return box.NewRunner(b, net) }

// TunnelSlot names the slot for tunnel i of a channel.
func TunnelSlot(channel string, i int) string { return box.TunnelSlot(channel, i) }

// Annotation constructors (paper Section IV-A).
var (
	OpenSlotAnn  = box.OpenSlotAnn
	CloseSlotAnn = box.CloseSlotAnn
	HoldSlotAnn  = box.HoldSlotAnn
	FlowLinkAnn  = box.FlowLinkAnn
)

// Transports: signaling channels are two-way, FIFO, and reliable.
type (
	// Network abstracts channel establishment.
	Network = transport.Network
	// Port is one end of a signaling channel.
	Port = transport.Port
	// MemNetwork is the in-process network.
	MemNetwork = transport.MemNetwork
	// TCPNetwork runs signaling channels over TCP.
	TCPNetwork = transport.TCPNetwork
)

// NewMemNetwork creates an in-process network.
func NewMemNetwork() *MemNetwork { return transport.NewMemNetwork() }

// Endpoints and resources.
type (
	// Device is a user device with the paper's Figure 5 interface.
	Device = endpoint.Device
	// DeviceConfig configures a Device.
	DeviceConfig = endpoint.Config
	// Bridge is a conference bridge (audio mixer).
	Bridge = endpoint.Bridge
	// MovieServer serves movies over per-tunnel media channels.
	MovieServer = endpoint.MovieServer
	// Transcoder relays media between two channels with different
	// codecs (the two-channel media resource of paper Section III-A).
	Transcoder = endpoint.Transcoder
	// TranscoderConfig configures a Transcoder.
	TranscoderConfig = endpoint.TranscoderConfig
)

// NewDevice creates, registers, and starts a device.
func NewDevice(cfg DeviceConfig) (*Device, error) { return endpoint.NewDevice(cfg) }

// NewToneGenerator creates a tone-playing resource.
func NewToneGenerator(name string, net Network, plane *MediaPlane) (*Device, error) {
	return endpoint.NewToneGenerator(name, net, plane)
}

// NewIVR creates an audio-signaling resource.
func NewIVR(name string, net Network, plane *MediaPlane, onApp func(channel, app string, attrs []Attr)) (*Device, error) {
	return endpoint.NewIVR(name, net, plane, onApp)
}

// NewBridge creates a conference bridge.
func NewBridge(name string, net Network, plane *MediaPlane) (*Bridge, error) {
	return endpoint.NewBridge(name, net, plane)
}

// NewMovieServer creates a movie server.
func NewMovieServer(name string, net Network, plane *MediaPlane) (*MovieServer, error) {
	return endpoint.NewMovieServer(name, net, plane)
}

// NewTranscoder creates a codec-bridging media resource.
func NewTranscoder(cfg TranscoderConfig) (*Transcoder, error) {
	return endpoint.NewTranscoder(cfg)
}

// Simulated media plane.
type (
	// MediaPlane delivers simulated RTP packets between endpoints.
	MediaPlane = media.Plane
	// UDPMediaPlane carries media as real UDP datagrams on the host.
	UDPMediaPlane = media.UDPPlane
	// MediaRegistry is the plane interface endpoints accept (both
	// planes implement it).
	MediaRegistry = media.Registry
	// MediaFlow is one observed media flow.
	MediaFlow = media.Flow
	// MediaFraming fills and checks the payload each media packet
	// carries; TSFraming is the MPEG-TS implementation.
	MediaFraming = media.Framing
	// MediaFramingFactory builds one framing per agent.
	MediaFramingFactory = media.FramingFactory
	// TSFraming carries genuine single-program MPEG-TS bursts.
	TSFraming = media.TSFraming
)

// NewMediaPlane creates an empty in-memory media plane.
func NewMediaPlane() *MediaPlane { return media.NewPlane() }

// NewUDPMediaPlane creates a media plane over real UDP sockets.
func NewUDPMediaPlane() *UDPMediaPlane { return media.NewUDPPlane() }

// NewTSFraming creates an MPEG-TS payload framing (188-byte packets,
// PES encapsulation, PAT/PMT, continuity counters, PCR).
func NewTSFraming() *TSFraming { return media.NewTSFraming() }

// Path semantics and verification (paper Sections V and VIII).
type (
	// PathProp is one of the paper's four temporal path specifications.
	PathProp = ltl.PathProp
	// Topology is a snapshot of boxes, tunnels, and flowlinks.
	Topology = path.Topology
	// CheckerOptions tunes the model checker.
	CheckerOptions = mc.Options
	// PathModel describes one signaling-path model to verify.
	PathModel = mcmodel.Config
	// Verdict is the outcome of checking one path model.
	Verdict = mcmodel.Verdict
)

// The temporal properties of Section V.
const (
	StabClosed      = ltl.StabClosed
	StabNotFlowing  = ltl.StabNotFlowing
	RecFlowing      = ltl.RecFlowing
	ClosedOrFlowing = ltl.ClosedOrFlowing
)

// NewTopology creates an empty topology for path analysis.
func NewTopology() *Topology { return path.NewTopology() }

// PathMonitor is the runtime verifier: it snapshots live boxes and
// evaluates the Section V path specifications on the running system.
type PathMonitor = pathmon.Monitor

// PathReport is one monitored signaling path with its specification
// and current observation.
type PathReport = pathmon.PathReport

// NewPathMonitor creates an empty runtime path monitor.
func NewPathMonitor() *PathMonitor { return pathmon.New() }

// FindPath returns the monitored path between two named boxes.
var FindPath = pathmon.Find

// CheckPathModel explores and verifies one signaling-path model.
func CheckPathModel(cfg PathModel, opts CheckerOptions) Verdict { return mcmodel.Check(cfg, opts) }

// VerifySuite runs the paper's twelve path models (Section VIII-A).
func VerifySuite(opts CheckerOptions) []Verdict { return mcmodel.Suite(opts) }

// Performance laboratory (paper Sections VIII-C and IX-B).
type (
	// LatencyRow is one measured data point against a paper formula.
	LatencyRow = lab.Row
)

// The paper's concrete cost parameters: c = 20 ms, n = 34 ms.
const (
	PaperC = lab.PaperC
	PaperN = lab.PaperN
)

// Experiment entry points; see internal/lab for details.
var (
	Fig13Latency = lab.Fig13
	PathSweep    = lab.PathSweep
	SIPCommon    = lab.SIPCommon
	SIPGlare     = lab.SIPGlare
	SIPAblations = lab.Ablations
	BundlingOurs = lab.BundlingOurs
	BundlingSIP  = lab.BundlingSIP
)

// Scenarios: the paper's example services as reusable fixtures.
type (
	// PrepaidScenario is the Figures 2/3 configuration.
	PrepaidScenario = scenario.Prepaid
	// ClickToDialConfig parameterizes the Figure 6 box.
	ClickToDialConfig = scenario.ClickToDialConfig
	// VoicemailConfig parameterizes the voicemail feature box.
	VoicemailConfig = scenario.VoicemailConfig
	// ScreenConfig parameterizes the call-screening feature box.
	ScreenConfig = scenario.ScreenConfig
)

// NewPrepaidScenario wires the prepaid-card story of Figures 2 and 3.
func NewPrepaidScenario() (*PrepaidScenario, error) { return scenario.NewPrepaid() }

// NewClickToDial starts a Click-to-Dial box (paper Figure 6).
var NewClickToDial = scenario.NewClickToDial

// NewVoicemail starts a voicemail feature box (the paper's motivating
// "persistent network presence" service, Section I).
var NewVoicemail = scenario.NewVoicemail

// NewScreen starts a call-screening feature box, composable in a
// DFC-style pipeline with other features.
var NewScreen = scenario.NewScreen
