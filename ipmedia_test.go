// Integration tests of the public API, including a full scenario over
// real TCP sockets.
package ipmedia_test

import (
	"testing"
	"time"

	"ipmedia"
)

func eventually(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestPublicAPICall exercises the facade: devices, media plane, mute,
// hangup.
func TestPublicAPICall(t *testing.T) {
	net := ipmedia.NewMemNetwork()
	plane := ipmedia.NewMediaPlane()
	a, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "a", Net: net, Plane: plane, MediaPort: 5004})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	b, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "b", Net: net, Plane: plane, MediaPort: 5006})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if err := a.Call("c", "b", ipmedia.Audio); err != nil {
		t.Fatal(err)
	}
	eventually(t, "ringing", func() bool { return len(b.Ringing()) == 1 })
	b.Answer(b.Ringing()[0])
	eventually(t, "media", func() bool { return plane.HasFlow("a", "b") && plane.HasFlow("b", "a") })
	a.SetMute(false, true)
	eventually(t, "muted", func() bool { return !plane.HasFlow("a", "b") && plane.HasFlow("b", "a") })
	a.HangUp("c")
	eventually(t, "silence", func() bool { return len(plane.Flows()) == 0 })
}

// TestServerProgramOverTCP runs a three-box flowlink scenario entirely
// over loopback TCP: two devices and a middle server box with a
// program, exchanging the framed wire format on real sockets.
func TestServerProgramOverTCP(t *testing.T) {
	var net ipmedia.TCPNetwork
	plane := ipmedia.NewMediaPlane()

	// Reserve three ephemeral addresses.
	addr := func() string {
		l, err := net.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		a := l.Addr()
		l.Close()
		return a
	}
	aAddr, bAddr := addr(), addr()

	a, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "a", Addr: aAddr, Net: net, Plane: plane, MediaPort: 5004})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	b, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "b", Addr: bAddr, Net: net, Plane: plane, MediaPort: 5006, AutoAccept: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	mid := ipmedia.NewRunner(ipmedia.NewBox("mid", ipmedia.ServerProfile{Name: "mid"}), net)
	defer mid.Stop()
	if err := mid.Connect("a", aAddr); err != nil {
		t.Fatal(err)
	}
	if err := mid.Connect("b", bAddr); err != nil {
		t.Fatal(err)
	}
	mid.SetProgram(&ipmedia.Program{
		Initial: "linked",
		States: []*ipmedia.State{{
			Name:   "linked",
			Annots: []ipmedia.Annot{ipmedia.FlowLinkAnn(ipmedia.TunnelSlot("a", 0), ipmedia.TunnelSlot("b", 0))},
		}},
	})
	// Device a opens on its accepted channel; the open crosses two TCP
	// connections through the middle box.
	a.OpenOn("in0", ipmedia.Audio)
	eventually(t, "end-to-end media over TCP", func() bool {
		return plane.HasFlow("a", "b") && plane.HasFlow("b", "a")
	})
	for _, e := range mid.Errs() {
		t.Errorf("mid error: %v", e)
	}
}

// TestProductionShape runs the full production configuration: framed
// signaling over real TCP sockets and media as real UDP datagrams —
// the Figure 1 separation of signaling and media channels, on actual
// sockets.
func TestProductionShape(t *testing.T) {
	var net ipmedia.TCPNetwork
	plane := ipmedia.NewUDPMediaPlane()
	defer plane.Close()

	addr := func() string {
		l, err := net.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		a := l.Addr()
		l.Close()
		return a
	}
	aAddr, bAddr := addr(), addr()

	a, err := ipmedia.NewDevice(ipmedia.DeviceConfig{
		Name: "a", Addr: aAddr, Net: net, Plane: plane,
		MediaAddr: "127.0.0.1", MediaPort: 39801,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	b, err := ipmedia.NewDevice(ipmedia.DeviceConfig{
		Name: "b", Addr: bAddr, Net: net, Plane: plane,
		MediaAddr: "127.0.0.1", MediaPort: 39803,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if errs := plane.Errs(); len(errs) > 0 {
		t.Skipf("cannot bind UDP media sockets: %v", errs[0])
	}

	if err := a.Call("c", bAddr, ipmedia.Audio); err != nil {
		t.Fatal(err)
	}
	eventually(t, "b ringing", func() bool { return len(b.Ringing()) == 1 })
	b.Answer(b.Ringing()[0])
	eventually(t, "flows declared", func() bool {
		return plane.HasFlow("a", "b") && plane.HasFlow("b", "a")
	})
	plane.Tick(20)
	eventually(t, "datagrams accepted both ways", func() bool {
		return a.Agent().Stats().Accepted >= 20 && b.Agent().Stats().Accepted >= 20
	})
	if errs := plane.Errs(); len(errs) > 0 {
		t.Fatalf("media errors: %v", errs)
	}
}

// TestVerifySuiteFacade runs the twelve-model verification through the
// public API.
func TestVerifySuiteFacade(t *testing.T) {
	for _, v := range ipmedia.VerifySuite(ipmedia.CheckerOptions{MaxStates: 5_000_000}) {
		if !v.OK() {
			t.Errorf("%s: safety=%v liveness=%v", v.Config.Name(), v.Safety, v.Liveness)
		}
	}
}

// TestLatencyFacade reproduces the paper's headline comparison through
// the public API.
func TestLatencyFacade(t *testing.T) {
	ours, err := ipmedia.Fig13Latency(ipmedia.PaperC, ipmedia.PaperN)
	if err != nil {
		t.Fatal(err)
	}
	sip, err := ipmedia.SIPCommon(ipmedia.PaperC, ipmedia.PaperN)
	if err != nil {
		t.Fatal(err)
	}
	if ours.Measured != 128*time.Millisecond || sip.Measured != 378*time.Millisecond {
		t.Fatalf("headline comparison %v vs %v, want 128ms vs 378ms", ours.Measured, sip.Measured)
	}
}

// TestTopologyFacade exercises signaling-path analysis via the facade.
func TestTopologyFacade(t *testing.T) {
	top := ipmedia.NewTopology()
	type ref = struct{ Box, Slot string }
	top.Tunnel(ref{"L", "l"}, ref{"M", "a"})
	top.Link(ref{"M", "a"}, ref{"M", "b"})
	top.Tunnel(ref{"M", "b"}, ref{"R", "r"})
	top.SetGoal(ref{"L", "l"}, "openSlot")
	top.SetGoal(ref{"R", "r"}, "holdSlot")
	paths, err := top.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].Flowlinks() != 1 {
		t.Fatalf("paths = %v", paths)
	}
	spec, err := top.Spec(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if spec != ipmedia.RecFlowing {
		t.Fatalf("spec = %v", spec)
	}
}
