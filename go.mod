module ipmedia

go 1.22
