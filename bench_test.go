// Benchmarks regenerating every quantitative result in the paper's
// evaluation (the E1–E12 experiment index in DESIGN.md), plus
// microbenchmarks of the protocol engines. Latency experiments run on
// the virtual clock and report the measured virtual latency as a
// custom "ms_latency" metric — wall-clock ns/op measures only how fast
// the simulation runs, not the protocol.
package ipmedia_test

import (
	"testing"
	"time"

	"ipmedia"
	"ipmedia/internal/core"
	"ipmedia/internal/lab"
	"ipmedia/internal/mc"
	"ipmedia/internal/mcmodel"
	"ipmedia/internal/scenario"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/transport"
)

// BenchmarkE1NaivePathology runs the full Figure 2 story per
// iteration: establishment plus the three pathological snapshots under
// uncoordinated servers.
func BenchmarkE1NaivePathology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := scenario.NewPrepaid()
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Establish(); err != nil {
			b.Fatal(err)
		}
		p.GoNaive()
		if _, err := p.RunNaive(); err != nil {
			b.Fatal(err)
		}
		p.Stop()
	}
}

// BenchmarkE2PrepaidCorrect runs the full Figure 3 story per
// iteration: establishment plus all four compositional snapshots.
func BenchmarkE2PrepaidCorrect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := scenario.NewPrepaid()
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Establish(); err != nil {
			b.Fatal(err)
		}
		if _, err := p.RunCorrect(); err != nil {
			b.Fatal(err)
		}
		p.Stop()
	}
}

// BenchmarkE3ProtocolScenario drives the Figure 10 protocol scenario —
// open, oack, selects, modify (describe/select), close, closeack —
// through two real slots per iteration.
func BenchmarkE3ProtocolScenario(b *testing.B) {
	dl := sig.Descriptor{ID: sig.DescID{Origin: "L", Seq: 1}, Addr: "l", Port: 1, Codecs: []sig.Codec{sig.G711}}
	dl2 := sig.Descriptor{ID: sig.DescID{Origin: "L", Seq: 2}, Addr: "l", Port: 1, Codecs: []sig.Codec{sig.G726}}
	dr := sig.Descriptor{ID: sig.DescID{Origin: "R", Seq: 1}, Addr: "r", Port: 2, Codecs: []sig.Codec{sig.G711, sig.G726}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, r := slot.New("l", true), slot.New("r", false)
		step := func(dir bool, g sig.Signal) {
			var err error
			if dir {
				if err = l.Send(g); err == nil {
					_, err = r.Receive(g)
				}
			} else {
				if err = r.Send(g); err == nil {
					_, err = l.Receive(g)
				}
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		step(true, sig.Open(sig.Audio, dl))
		step(false, sig.Oack(dr))
		step(false, sig.Select(sig.Selector{Answers: dl.ID, Addr: "r", Port: 2, Codec: sig.G711}))
		step(true, sig.Select(sig.Selector{Answers: dr.ID, Addr: "l", Port: 1, Codec: sig.G711}))
		step(true, sig.Describe(dl2)) // modify
		step(false, sig.Select(sig.Selector{Answers: dl2.ID, Addr: "r", Port: 2, Codec: sig.G726}))
		step(true, sig.Close())
		step(false, sig.CloseAck())
	}
}

// BenchmarkE4ClickToDial runs the Figure 6 happy path per iteration.
func BenchmarkE4ClickToDial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := ipmedia.NewMemNetwork()
		plane := ipmedia.NewMediaPlane()
		p1, _ := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "p1", Net: net, Plane: plane, MediaPort: 5004})
		p2, _ := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "p2", Net: net, Plane: plane, MediaPort: 5006})
		tone, _ := ipmedia.NewToneGenerator("tone", net, plane)
		ctd, done, err := ipmedia.NewClickToDial(net, ipmedia.ClickToDialConfig{
			User1Addr: "p1", User2Addr: "p2", ToneAddr: "tone",
		})
		if err != nil {
			b.Fatal(err)
		}
		waitB(b, func() bool { return len(p1.Ringing()) == 1 })
		p1.Answer("in0")
		waitB(b, func() bool { return len(p2.Ringing()) == 1 })
		p2.Answer("in0")
		waitB(b, func() bool { return plane.HasFlow("p1", "p2") && plane.HasFlow("p2", "p1") })
		p2.HangUp("in0")
		<-done
		ctd.Stop()
		p1.Stop()
		p2.Stop()
		tone.Stop()
	}
}

// BenchmarkE5Conference joins three devices to a bridge per iteration
// and waits for the full media mesh.
func BenchmarkE5Conference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := ipmedia.NewMemNetwork()
		plane := ipmedia.NewMediaPlane()
		br, err := ipmedia.NewBridge("bridge", net, plane)
		if err != nil {
			b.Fatal(err)
		}
		var devs []*ipmedia.Device
		for j := 0; j < 3; j++ {
			d, _ := ipmedia.NewDevice(ipmedia.DeviceConfig{
				Name: string(rune('A' + j)), Net: net, Plane: plane, MediaPort: 5004 + 2*j,
			})
			devs = append(devs, d)
			if err := d.Call("conf", "bridge", ipmedia.Audio); err != nil {
				b.Fatal(err)
			}
		}
		waitB(b, func() bool { return len(plane.Flows()) == 6 })
		for _, d := range devs {
			d.Stop()
		}
		br.Stop()
	}
}

// BenchmarkE6CollabTV creates a movie session with five tunnels,
// plays, and splits off a second session per iteration.
func BenchmarkE6CollabTV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := ipmedia.NewMemNetwork()
		plane := ipmedia.NewMediaPlane()
		ms, err := ipmedia.NewMovieServer("movies", net, plane)
		if err != nil {
			b.Fatal(err)
		}
		ctl := ipmedia.NewRunner(ipmedia.NewBox("ctl", ipmedia.ServerProfile{Name: "ctl"}), net)
		if err := ctl.Connect("m", "movies"); err != nil {
			b.Fatal(err)
		}
		ctl.Do(func(ctx *ipmedia.Ctx) {
			ctx.SendMeta("m", ipmedia.Meta{Kind: ipmedia.MetaApp, App: "watch", Attrs: ipmedia.NewAttrs("movie", "x", "pos", "0")})
			ctx.SendMeta("m", ipmedia.Meta{Kind: ipmedia.MetaApp, App: "play"})
		})
		waitB(b, func() bool {
			s, ok := ms.Session("in0")
			return ok && s.Playing
		})
		ctl.Stop()
		ms.Stop()
	}
}

// BenchmarkE7ModelCheckSuite verifies all twelve Section VIII-A path
// models per iteration (default chaos budgets) and reports the total
// explored states.
func BenchmarkE7ModelCheckSuite(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		states = 0
		for _, v := range mcmodel.Suite(mc.Options{}) {
			if !v.OK() {
				b.Fatalf("%s failed: %v %v", v.Config.Name(), v.Safety, v.Liveness)
			}
			states += v.Result.States
		}
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkE8FlowlinkBlowup measures the verification-cost blow-up of
// adding one flowlink (paper Section VIII-A: x300 memory, x1000 time
// on its Spin models) at equal chaos budgets, reporting the state
// ratio.
func BenchmarkE8FlowlinkBlowup(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		base := mcmodel.Check(mcmodel.Config{Left: mcmodel.Open, Right: mcmodel.Hold, Flowlinks: 0, ChaosBudget: 2}, mc.Options{})
		link := mcmodel.Check(mcmodel.Config{Left: mcmodel.Open, Right: mcmodel.Hold, Flowlinks: 1, ChaosBudget: 2}, mc.Options{})
		if !base.OK() || !link.OK() {
			b.Fatal("verification failed")
		}
		ratio = float64(link.Result.States) / float64(base.Result.States)
	}
	b.ReportMetric(ratio, "state_ratio")
}

// BenchmarkE9Fig13Latency measures the compositional protocol's
// concurrent-relink latency on the virtual clock (paper: 2n+3c =
// 128 ms).
func BenchmarkE9Fig13Latency(b *testing.B) {
	var r lab.Row
	var err error
	for i := 0; i < b.N; i++ {
		r, err = lab.Fig13(lab.PaperC, lab.PaperN)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Match() {
			b.Fatalf("formula mismatch: %s", r)
		}
	}
	b.ReportMetric(float64(r.Measured.Milliseconds()), "ms_latency")
}

// BenchmarkE10PathSweep measures pn+(p+1)c for p = 1..8.
func BenchmarkE10PathSweep(b *testing.B) {
	var last lab.Row
	for i := 0; i < b.N; i++ {
		rows, err := lab.PathSweep(lab.PaperC, lab.PaperN, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Match() {
				b.Fatalf("formula mismatch: %s", r)
			}
		}
		last = rows[len(rows)-1]
	}
	b.ReportMetric(float64(last.Measured.Milliseconds()), "ms_latency_p8")
}

// BenchmarkE11SIPComparison measures the SIP baseline: the common case
// (paper: 378 ms vs our 128 ms) and the glare case (10n+11c+d).
func BenchmarkE11SIPComparison(b *testing.B) {
	var common, glare lab.Row
	for i := 0; i < b.N; i++ {
		var err error
		common, err = lab.SIPCommon(lab.PaperC, lab.PaperN)
		if err != nil {
			b.Fatal(err)
		}
		glare, _, err = lab.SIPGlare(lab.PaperC, lab.PaperN, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if !common.Match() || !glare.Match() {
			b.Fatal("formula mismatch")
		}
	}
	b.ReportMetric(float64(common.Measured.Milliseconds()), "ms_sip_common")
	b.ReportMetric(float64(glare.Measured.Milliseconds()), "ms_sip_glare")
}

// BenchmarkE12Ablations isolates SIP's three delay sources and the
// bundling penalty.
func BenchmarkE12Ablations(b *testing.B) {
	var ours, sip lab.Row
	for i := 0; i < b.N; i++ {
		rows, err := lab.Ablations(lab.PaperC, lab.PaperN, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Match() {
				b.Fatalf("formula mismatch: %s", r)
			}
		}
		ours, err = lab.BundlingOurs(lab.PaperC, lab.PaperN)
		if err != nil {
			b.Fatal(err)
		}
		sip, err = lab.BundlingSIP(lab.PaperC, lab.PaperN)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ours.Measured.Milliseconds()), "ms_bundled_ours")
	b.ReportMetric(float64(sip.Measured.Milliseconds()), "ms_bundled_sip")
}

// BenchmarkWireCodec measures the framed binary encoding of a typical
// signal.
func BenchmarkWireCodec(b *testing.B) {
	e := sig.Envelope{Tunnel: 3, Sig: sig.Open(sig.Audio, sig.Descriptor{
		ID: sig.DescID{Origin: "device", Seq: 7}, Addr: "192.168.1.10", Port: 5004,
		Codecs: []sig.Codec{sig.G711, sig.G726},
	})}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := e.Marshal()
		if _, err := sig.UnmarshalEnvelope(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowLinkForwarding measures the flowlink engine's
// steady-state describe/select forwarding rate.
func BenchmarkFlowLinkForwarding(b *testing.B) {
	ss := benchSlots{}
	ss["a"] = slot.New("a", true)
	ss["b"] = slot.New("b", false)
	fl := core.NewFlowLink("a", "b")
	// Bring both slots to flowing by hand.
	dl := sig.Descriptor{ID: sig.DescID{Origin: "L", Seq: 1}, Addr: "l", Port: 1, Codecs: []sig.Codec{sig.G711}}
	dr := sig.Descriptor{ID: sig.DescID{Origin: "R", Seq: 1}, Addr: "r", Port: 2, Codecs: []sig.Codec{sig.G711}}
	if _, err := ss["a"].Receive(sig.Open(sig.Audio, dl)); err != nil {
		b.Fatal(err)
	}
	if _, err := fl.Attach(ss); err != nil {
		b.Fatal(err)
	}
	if _, err := ss["b"].Receive(sig.Oack(dr)); err != nil {
		b.Fatal(err)
	}
	if _, err := fl.OnEvent(ss, "b", slot.EvOack, sig.Oack(dr)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate fresh describes from the left and the matching
		// selects from the right.
		d := dl
		d.ID.Seq = uint32(i%2) + 2
		ev, err := ss["a"].Receive(sig.Describe(d))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fl.OnEvent(ss, "a", ev, sig.Describe(d)); err != nil {
			b.Fatal(err)
		}
		sel := sig.Selector{Answers: d.ID, Addr: "r", Port: 2, Codec: sig.G711}
		ev, err = ss["b"].Receive(sig.Select(sel))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fl.OnEvent(ss, "b", ev, sig.Select(sel)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportRoundTrip measures envelope throughput over the
// in-memory transport.
func BenchmarkTransportRoundTrip(b *testing.B) {
	pa, pb := transport.Pipe("a", "b")
	e := sig.Envelope{Tunnel: 0, Sig: sig.Close()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pa.Send(e); err != nil {
			b.Fatal(err)
		}
		<-pb.Recv()
	}
}

type benchSlots map[string]*slot.Slot

func (s benchSlots) Slot(name string) *slot.Slot { return s[name] }

func waitB(b *testing.B, pred func() bool) {
	b.Helper()
	for i := 0; i < 5000; i++ {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	b.Fatal("timeout in benchmark setup")
}

// BenchmarkE13MultiFlowlink verifies a two-flowlink path per iteration
// — the paper's "might take 900 Gb and 300 hours" future-work item.
func BenchmarkE13MultiFlowlink(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		v := mcmodel.Check(mcmodel.Config{Left: mcmodel.Open, Right: mcmodel.Hold, Flowlinks: 2, ChaosBudget: 1}, mc.Options{})
		if !v.OK() {
			b.Fatalf("safety=%v liveness=%v", v.Safety, v.Liveness)
		}
		states = v.Result.States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkE15MessageCounts tallies wire messages per relink for both
// protocols.
func BenchmarkE15MessageCounts(b *testing.B) {
	var m lab.MsgCounts
	for i := 0; i < b.N; i++ {
		var err error
		m, err = lab.MessageCounts(lab.PaperC, lab.PaperN, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Ours), "msgs_ours")
	b.ReportMetric(float64(m.SIPCommon), "msgs_sip_common")
	b.ReportMetric(float64(m.SIPGlare), "msgs_sip_glare")
}

// BenchmarkE17GlareWindow measures the start-offset window inside
// which two SIP operations collide; the compositional protocol never
// conflicts.
func BenchmarkE17GlareWindow(b *testing.B) {
	var res lab.GlareWindowResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = lab.GlareWindow(lab.PaperC, lab.PaperN, 400*time.Millisecond, 50*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if res.OursConflicts != 0 {
			b.Fatal("compositional protocol conflicted")
		}
	}
	b.ReportMetric(float64(res.SIPWindow.Milliseconds()), "ms_sip_glare_window")
}

// Package-level instrument pointers for the disabled-path benchmarks:
// nil at compile time to the reader, but opaque enough that the
// compiler cannot prove it and eliminate the calls.
var (
	benchNilCounter *telemetry.Counter
	benchNilHist    *telemetry.Histogram
	benchNilGauge   *telemetry.Gauge
)

// BenchmarkTelemetry measures the instrument hot paths: counter
// increment and histogram observe when enabled, and the nil-receiver
// fast path the whole stack rides when telemetry is off. Acceptance:
// counter increment <= 25ns/op, disabled path <= 2ns/op with 0 allocs.
func BenchmarkTelemetry(b *testing.B) {
	reg := telemetry.NewRegistry()
	b.Run("CounterInc", func(b *testing.B) {
		c := reg.Counter("bench.counter")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("GaugeAdd", func(b *testing.B) {
		g := reg.Gauge("bench.gauge")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Add(1)
		}
	})
	b.Run("HistogramObserve", func(b *testing.B) {
		h := reg.Histogram("bench.hist")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i&0xFFFFF) * time.Nanosecond)
		}
	})
	b.Run("DisabledCounter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchNilCounter.Inc()
		}
	})
	b.Run("DisabledHistogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchNilHist.Observe(time.Duration(i))
		}
	})
	b.Run("DisabledTimer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchNilHist.Timer()()
		}
	})
}

// TestTelemetryDisabledZeroAlloc pins the disabled path's allocation
// contract: with no registry installed, every instrument call the
// instrumented layers make must allocate nothing.
func TestTelemetryDisabledZeroAlloc(t *testing.T) {
	if telemetry.Enabled() {
		t.Skip("default registry installed by another test")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		benchNilCounter.Inc()
		benchNilCounter.Add(3)
		benchNilGauge.Add(1)
		benchNilGauge.Set(7)
		benchNilGauge.Dec()
		benchNilHist.Observe(time.Microsecond)
		benchNilHist.Timer()()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry path allocates %v bytes/op, want 0", allocs)
	}
}
